// The columnar chase kernel: the chase of instance_chase.h re-expressed
// over flat, contiguous arrays of raw value ids ("codes" in the loose
// sense — cell values of a CodeMatrix, not dictionary codes).
//
// Two entry points:
//
//  * ChaseCodes — a full chase of an arbitrary instance, the engine behind
//    ChaseBackend::kColumnar. Same rule semantics as ChaseHash (const/const
//    conflict, null->const, high-null->low-null), and therefore the same
//    fixpoint: every merge class resolves to its unique minimum raw element
//    (constants sort below nulls), so the fixpoint is independent of merge
//    order and backends agree value-for-value after Normalize().
//
//  * CodeProbeIndex + ProbeDeltaChaser — the semi-naive probe kernel for
//    condition (c). A translatability check runs up to |Sigma|·|V| probes
//    against one base-chase fixpoint; the row path copies the fixpoint
//    relation and re-chases it per probe. Here the fixpoint is frozen once
//    per check into a column-major CodeMatrix plus value->row postings and
//    per-FD group tables, and each probe runs a delta chase: only rows
//    containing a value whose resolution changed are rescanned. The
//    fixpoint property (every base lhs-group already agrees on its rhs)
//    makes the dirty-row frontier sound — see the correctness notes in
//    code_chase.cc.
//
// Scratch (signature buffers, dirty stamps, worklists) lives in a
// per-thread Arena and per-chaser reusable tables; probes allocate nothing
// on the steady state.

#ifndef RELVIEW_CHASE_CODE_CHASE_H_
#define RELVIEW_CHASE_CODE_CHASE_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "chase/instance_chase.h"
#include "deps/fd_set.h"
#include "relational/relation.h"

namespace relview {

/// Column-major matrix of a relation's raw cell values: column c of row r
/// is data[c * rows + r]. The layout makes per-FD scans walk |lhs|+1
/// contiguous arrays instead of striding across heap-allocated Tuples.
struct CodeMatrix {
  int rows = 0;
  int cols = 0;
  std::vector<uint32_t> data;

  uint32_t at(int row, int col) const {
    return data[static_cast<size_t>(col) * static_cast<size_t>(rows) +
                static_cast<size_t>(row)];
  }

  static CodeMatrix FromRelation(const Relation& r);
};

/// One FD lowered to storage positions of a schema. rhs_pos < 0 marks an
/// FD whose attributes fall outside the schema (skipped, matching the
/// attribute checks in ChaseHash/ChaseSort).
struct FDPlan {
  std::vector<int> lhs_pos;
  int rhs_pos = -1;
};

std::vector<FDPlan> BuildFDPlans(const Schema& schema, const FDSet& fds);

/// Frozen per-check probe state over one base-chase fixpoint: the cell
/// matrix, FD plans, value->rows postings, and per-FD base group tables
/// (one representative row per distinct lhs signature; the fixpoint
/// property guarantees every group member shares the representative's rhs
/// value). Immutable after Build — safe to share across probe threads.
class CodeProbeIndex {
 public:
  static CodeProbeIndex Build(const Relation& fixpoint, const FDSet& fds);

  const CodeMatrix& matrix() const { return matrix_; }
  const std::vector<FDPlan>& plans() const { return plans_; }

  /// Rows whose cells contain raw value `v` (ascending, deduplicated);
  /// empty when the value does not occur.
  const std::vector<int32_t>* RowsWith(uint32_t v) const {
    auto it = postings_.find(v);
    return it == postings_.end() ? nullptr : &it->second;
  }

  /// Base group representatives for FD `fi` whose lhs signature hashes to
  /// `h`; null when none.
  const std::vector<int32_t>* GroupReps(int fi, uint64_t h) const {
    const auto& table = groups_[static_cast<size_t>(fi)];
    auto it = table.find(h);
    return it == table.end() ? nullptr : &it->second;
  }

  size_t MemoryBytes() const;

 private:
  CodeMatrix matrix_;
  std::vector<FDPlan> plans_;
  std::unordered_map<uint32_t, std::vector<int32_t>> postings_;
  std::vector<std::unordered_map<uint64_t, std::vector<int32_t>>> groups_;
};

/// Reusable per-worker scratch for delta probes against one CodeProbeIndex.
/// Not thread-safe; give each probe thread its own chaser.
class ProbeDeltaChaser {
 public:
  explicit ProbeDeltaChaser(const CodeProbeIndex* index) : index_(index) {}

  /// Equates each (a, b) pair of fixpoint values and chases to fixpoint.
  /// Returns true on a constant-constant conflict (the probe hypothesis is
  /// unsatisfiable). Afterwards Resolve() maps fixpoint values to their
  /// final values. Accounting accumulates into `stats`; `*chased` is set
  /// iff at least one rename round ran (mirrors the row path's
  /// chases_run counting).
  bool Chase(const std::vector<std::pair<uint32_t, uint32_t>>& seeds,
             ChaseStats* stats, bool* chased);

  /// Final value of a fixpoint value after Chase's merges (path-compressed
  /// union-find lookup).
  uint32_t Resolve(uint32_t raw);

 private:
  /// Union of the *roots* a and b. Returns false on const-const conflict.
  bool Union(uint32_t a, uint32_t b);
  void MarkDirtyRowsOf(uint32_t value);

  const CodeProbeIndex* index_;
  std::unordered_map<uint32_t, uint32_t> parent_;
  /// Merged-in members per live root (the root itself is implicit).
  std::unordered_map<uint32_t, std::vector<uint32_t>> members_;
  /// Values whose root changed since the last drain (loser classes).
  std::vector<uint32_t> pending_;
  /// The ever-dirty row set of the current probe (see the round structure
  /// in code_chase.cc): rows plus a stamp array for O(1) dedup, stamped
  /// with tick_ (one tick per Chase call).
  std::vector<int32_t> dirty_rows_;
  std::vector<uint64_t> dirty_stamp_;
  std::unordered_map<uint64_t, std::vector<int32_t>> round_table_;
  std::vector<uint32_t> sig_;
  uint64_t tick_ = 0;
};

/// Full columnar chase: ChaseInstance's ChaseBackend::kColumnar engine.
/// Produces the identical fixpoint (and Resolve-equivalent renames) to
/// ChaseHash/ChaseSort.
ChaseOutcome ChaseCodes(const Relation& input, const FDSet& fds);

}  // namespace relview

#endif  // RELVIEW_CHASE_CODE_CHASE_H_
