#include "chase/code_chase.h"

#include <algorithm>

#include "relational/arena.h"
#include "util/small_util.h"

// Correctness notes for the delta probe kernel (ProbeDeltaChaser).
//
// The chase computes the congruence closure of "value a = value b" facts
// under the FDs, with each merge class resolving to its unique minimum raw
// element (constants order below nulls, so the rule "null -> const,
// high-null -> low-null" is exactly "rename to the class minimum"). The
// closure — and hence conflict-or-not and every resolved value — is
// independent of the order merges are discovered in, which is what lets
// this kernel discover them lazily.
//
// Round structure: the *ever-dirty* set. Every merged-away value dirties
// the rows containing it (via the value->row postings); each round rescans
// the entire ever-dirty set, and the chase stops after the first round
// that performs no merge. Rescanning everything (rather than only the
// newly dirtied rows) is what makes the kernel sound: within a round,
// dirty rows compare against each other through a hash table keyed by
// their resolved-signature hash *at processing time*, and a mid-round
// merge can change a later row's hash after an earlier row was bucketed —
// the pair silently misses each other in that round. (A two-queue
// "newly dirty only" variant has exactly this hole; the differential test
// against the full re-chase oracle catches it.) The final, merge-free
// round closes it:
//   * no merges => no mid-round hash drift, so every violating
//     dirty x dirty pair lands in the same bucket and is compared;
//   * a dirty x clean violating pair is found through the base group
//     tables: a clean row's cells were never merged away (losing classes
//     dirty their rows in full), so its raw signature *is* its resolved
//     signature and the dirty row's resolved-signature lookup matches the
//     clean row's group representative (whose rhs equals the clean row's
//     rhs, because the base matrix is a fixpoint);
//   * a clean x clean pair cannot violate at all (fixpoint, resolutions
//     unchanged).
// Termination: each non-final round merges at least one class, and there
// are finitely many values.
//
// Base-group lookups compare a dirty row's *resolved* signature against a
// representative's *unresolved* matrix cells. A match implies every cell
// of that base signature is a live union-find root (the resolved signature
// contains only roots), hence every member of the base group still
// resolves to exactly that signature and the merge is genuine. A stale
// group (some lhs cell merged away) can never match — its base signature
// contains a non-root — and its members are in the ever-dirty set
// instead, so skipping it is sound.

namespace relview {

namespace {

constexpr uint64_t kSigSeed = 0x5DEECE66DULL;

}  // namespace

CodeMatrix CodeMatrix::FromRelation(const Relation& r) {
  CodeMatrix m;
  m.rows = r.size();
  m.cols = r.arity();
  m.data.resize(static_cast<size_t>(m.rows) * static_cast<size_t>(m.cols));
  for (int i = 0; i < m.rows; ++i) {
    const Tuple& t = r.row(i);
    for (int c = 0; c < m.cols; ++c) {
      m.data[static_cast<size_t>(c) * static_cast<size_t>(m.rows) +
             static_cast<size_t>(i)] = t[c].raw();
    }
  }
  return m;
}

std::vector<FDPlan> BuildFDPlans(const Schema& schema, const FDSet& fds) {
  std::vector<FDPlan> plans(static_cast<size_t>(fds.size()));
  for (int fi = 0; fi < fds.size(); ++fi) {
    const FD& fd = fds.fds()[fi];
    if (!fd.lhs.SubsetOf(schema.attrs()) || !schema.Contains(fd.rhs)) {
      continue;  // rhs_pos stays -1: FD outside the schema, skipped
    }
    FDPlan& plan = plans[static_cast<size_t>(fi)];
    fd.lhs.ForEach(
        [&](AttrId a) { plan.lhs_pos.push_back(schema.PosOf(a)); });
    plan.rhs_pos = schema.PosOf(fd.rhs);
  }
  return plans;
}

// ---------------------------------------------------------------------------
// CodeProbeIndex

CodeProbeIndex CodeProbeIndex::Build(const Relation& fixpoint,
                                     const FDSet& fds) {
  CodeProbeIndex idx;
  idx.matrix_ = CodeMatrix::FromRelation(fixpoint);
  idx.plans_ = BuildFDPlans(fixpoint.schema(), fds);
  const CodeMatrix& m = idx.matrix_;

  // Postings: rows ascending per value, deduplicated within a row.
  idx.postings_.reserve(static_cast<size_t>(m.rows) *
                            static_cast<size_t>(m.cols) / 2 +
                        1);
  for (int i = 0; i < m.rows; ++i) {
    for (int c = 0; c < m.cols; ++c) {
      std::vector<int32_t>& rows = idx.postings_[m.at(i, c)];
      if (rows.empty() || rows.back() != i) rows.push_back(i);
    }
  }

  // Per-FD base group representatives: one row per distinct lhs signature.
  idx.groups_.resize(idx.plans_.size());
  std::vector<uint32_t> sig;
  for (size_t fi = 0; fi < idx.plans_.size(); ++fi) {
    const FDPlan& plan = idx.plans_[fi];
    if (plan.rhs_pos < 0) continue;
    auto& table = idx.groups_[fi];
    table.reserve(static_cast<size_t>(m.rows) * 2 + 1);
    for (int i = 0; i < m.rows; ++i) {
      sig.clear();
      uint64_t h = kSigSeed;
      for (const int p : plan.lhs_pos) {
        const uint32_t v = m.at(i, p);
        sig.push_back(v);
        h = HashCombine(h, v);
      }
      std::vector<int32_t>& reps = table[h];
      bool dup = false;
      for (const int32_t rep : reps) {
        bool same = true;
        for (size_t c = 0; c < plan.lhs_pos.size(); ++c) {
          if (m.at(rep, plan.lhs_pos[c]) != sig[c]) {
            same = false;
            break;
          }
        }
        if (same) {
          dup = true;  // fixpoint => same rhs; one representative suffices
          break;
        }
      }
      if (!dup) reps.push_back(i);
    }
  }
  return idx;
}

size_t CodeProbeIndex::MemoryBytes() const {
  size_t total = matrix_.data.capacity() * sizeof(uint32_t);
  total += postings_.size() * (sizeof(uint32_t) + sizeof(void*) * 3);
  for (const auto& [v, rows] : postings_) {
    (void)v;
    total += rows.capacity() * sizeof(int32_t);
  }
  for (const auto& table : groups_) {
    total += table.size() * (sizeof(uint64_t) + sizeof(void*) * 3);
    for (const auto& [h, reps] : table) {
      (void)h;
      total += reps.capacity() * sizeof(int32_t);
    }
  }
  return total;
}

// ---------------------------------------------------------------------------
// ProbeDeltaChaser

uint32_t ProbeDeltaChaser::Resolve(uint32_t v) {
  auto it = parent_.find(v);
  if (it == parent_.end()) return v;
  uint32_t root = it->second;
  for (auto step = parent_.find(root); step != parent_.end();
       step = parent_.find(root)) {
    root = step->second;
  }
  while (v != root) {  // path compression
    auto step = parent_.find(v);
    const uint32_t next = step->second;
    step->second = root;
    v = next;
  }
  return root;
}

bool ProbeDeltaChaser::Union(uint32_t a, uint32_t b) {
  // Preconditions: a and b are distinct roots. The class representative is
  // the minimum raw id (constants sort below nulls), matching ResolvePair.
  const uint32_t winner = a < b ? a : b;
  const uint32_t loser = a < b ? b : a;
  if ((loser & Value::kNullTag) == 0) return false;  // both constants
  parent_[loser] = winner;
  std::vector<uint32_t>& wm = members_[winner];
  wm.push_back(loser);
  pending_.push_back(loser);
  auto it = members_.find(loser);
  if (it != members_.end()) {
    for (const uint32_t v : it->second) {
      wm.push_back(v);
      pending_.push_back(v);
    }
    members_.erase(loser);
  }
  return true;
}

void ProbeDeltaChaser::MarkDirtyRowsOf(uint32_t value) {
  const std::vector<int32_t>* rows = index_->RowsWith(value);
  if (rows == nullptr) return;
  for (const int32_t row : *rows) {
    if (dirty_stamp_[static_cast<size_t>(row)] == tick_) continue;
    dirty_stamp_[static_cast<size_t>(row)] = tick_;
    dirty_rows_.push_back(row);
  }
}

bool ProbeDeltaChaser::Chase(
    const std::vector<std::pair<uint32_t, uint32_t>>& seeds,
    ChaseStats* stats, bool* chased) {
  *chased = false;
  parent_.clear();
  members_.clear();
  pending_.clear();

  for (const auto& [a, b] : seeds) {
    const uint32_t ra = Resolve(a);
    const uint32_t rb = Resolve(b);
    if (ra == rb) continue;
    if (!Union(ra, rb)) return true;  // constant-constant: conflict
  }
  if (pending_.empty()) return false;  // hypothesis already holds
  *chased = true;

  const CodeMatrix& m = index_->matrix();
  const size_t nrows = static_cast<size_t>(m.rows);
  dirty_rows_.clear();
  if (dirty_stamp_.size() < nrows) dirty_stamp_.resize(nrows, 0);

  ++tick_;
  for (const uint32_t v : pending_) MarkDirtyRowsOf(v);
  pending_.clear();

  bool merged_this_round = true;
  while (merged_this_round) {
    merged_this_round = false;
    ++stats->rounds;
    for (size_t fi = 0; fi < index_->plans().size(); ++fi) {
      const FDPlan& plan = index_->plans()[fi];
      if (plan.rhs_pos < 0) continue;
      round_table_.clear();
      for (const int32_t row : dirty_rows_) {
        ++stats->work;
        sig_.clear();
        uint64_t h = kSigSeed;
        for (const int p : plan.lhs_pos) {
          const uint32_t v = Resolve(m.at(row, p));
          sig_.push_back(v);
          h = HashCombine(h, v);
        }
        // Base groups: at most one can match (signatures are distinct and
        // a match implies the signature is fully live; see file comment).
        if (const std::vector<int32_t>* reps =
                index_->GroupReps(static_cast<int>(fi), h)) {
          for (const int32_t rep : *reps) {
            ++stats->work;
            bool same = true;
            for (size_t c = 0; c < plan.lhs_pos.size(); ++c) {
              if (m.at(rep, plan.lhs_pos[c]) != sig_[c]) {
                same = false;
                break;
              }
            }
            if (!same) continue;
            const uint32_t ra = Resolve(m.at(row, plan.rhs_pos));
            const uint32_t rb = Resolve(m.at(rep, plan.rhs_pos));
            if (ra != rb) {
              if (!Union(ra, rb)) return true;
              ++stats->merges;
              merged_this_round = true;
            }
            break;
          }
        }
        // Dirty rows already processed this round for this FD.
        std::vector<int32_t>& bucket = round_table_[h];
        for (const int32_t j : bucket) {
          ++stats->work;
          bool same = true;
          for (size_t c = 0; c < plan.lhs_pos.size(); ++c) {
            if (Resolve(m.at(j, plan.lhs_pos[c])) != sig_[c]) {
              same = false;
              break;
            }
          }
          if (!same) continue;
          const uint32_t ra = Resolve(m.at(row, plan.rhs_pos));
          const uint32_t rb = Resolve(m.at(j, plan.rhs_pos));
          if (ra != rb) {
            if (!Union(ra, rb)) return true;
            ++stats->merges;
            merged_this_round = true;
          }
        }
        bucket.push_back(row);
      }
    }
    // Extend the ever-dirty set with rows touched by this round's losers;
    // the next round rescans everything (see the file comment for why).
    for (const uint32_t v : pending_) MarkDirtyRowsOf(v);
    pending_.clear();
  }
  return false;
}

// ---------------------------------------------------------------------------
// ChaseCodes: the full columnar chase (ChaseBackend::kColumnar).

ChaseOutcome ChaseCodes(const Relation& input, const FDSet& fds) {
  ChaseOutcome out;
  out.result = input;
  const int n = input.size();
  const int arity = input.arity();
  const std::vector<FDPlan> plans = BuildFDPlans(input.schema(), fds);

  // Scratch arena, retained per thread across calls: the cell matrix and
  // the per-round signature/hash arrays are the same shapes every time a
  // component is re-chased, so steady-state calls allocate nothing.
  thread_local Arena arena;
  arena.Reset();

  // Column-major cell matrix of raw ids.
  uint32_t* cells = arena.Alloc<uint32_t>(
      static_cast<size_t>(n) * static_cast<size_t>(arity));
  for (int i = 0; i < n; ++i) {
    const Tuple& t = input.row(i);
    for (int c = 0; c < arity; ++c) {
      cells[static_cast<size_t>(c) * static_cast<size_t>(n) +
            static_cast<size_t>(i)] = t[c].raw();
    }
  }
  std::unordered_map<uint32_t, uint32_t> parent;
  const auto resolve = [&parent](uint32_t v) {
    auto it = parent.find(v);
    if (it == parent.end()) return v;
    uint32_t root = it->second;
    for (auto step = parent.find(root); step != parent.end();
         step = parent.find(root)) {
      root = step->second;
    }
    while (v != root) {
      auto step = parent.find(v);
      const uint32_t next = step->second;
      step->second = root;
      v = next;
    }
    return root;
  };

  // Per-round scratch: resolved signatures (lhs-major contiguous) and
  // their hashes, sized for the widest FD.
  size_t max_lhs = 1;
  for (const FDPlan& p : plans) max_lhs = std::max(max_lhs, p.lhs_pos.size());
  uint32_t* sigs =
      arena.Alloc<uint32_t>(static_cast<size_t>(n) * max_lhs);
  uint64_t* hashes = arena.Alloc<uint64_t>(static_cast<size_t>(n));
  uint32_t* rhs_roots = arena.Alloc<uint32_t>(static_cast<size_t>(n));

  std::unordered_map<uint64_t, std::vector<int32_t>> groups;
  groups.reserve(static_cast<size_t>(n) * 2 + 1);

  bool changed = true;
  while (changed) {
    changed = false;
    ++out.stats.rounds;
    for (const FDPlan& plan : plans) {
      if (plan.rhs_pos < 0) continue;
      const size_t width = plan.lhs_pos.size();
      // Pass 1 — vectorized: resolve each lhs column into the contiguous
      // signature array and fold the hashes, one column at a time.
      for (int i = 0; i < n; ++i) hashes[i] = kSigSeed;
      for (size_t c = 0; c < width; ++c) {
        const uint32_t* col =
            cells + static_cast<size_t>(plan.lhs_pos[c]) *
                        static_cast<size_t>(n);
        uint32_t* sig_col = sigs + c * static_cast<size_t>(n);
        for (int i = 0; i < n; ++i) {
          const uint32_t v = resolve(col[i]);
          sig_col[i] = v;
          hashes[i] = HashCombine(hashes[i], v);
        }
      }
      {
        const uint32_t* col = cells + static_cast<size_t>(plan.rhs_pos) *
                                          static_cast<size_t>(n);
        for (int i = 0; i < n; ++i) rhs_roots[i] = resolve(col[i]);
      }
      out.stats.work += n;
      // Pass 2 — group by signature; union each row's rhs with the first
      // signature-equal predecessor's (transitively groups the class).
      groups.clear();
      for (int i = 0; i < n; ++i) {
        std::vector<int32_t>& bucket = groups[hashes[i]];
        bool grouped = false;
        for (const int32_t j : bucket) {
          ++out.stats.work;
          bool same = true;
          for (size_t c = 0; c < width; ++c) {
            if (sigs[c * static_cast<size_t>(n) + static_cast<size_t>(j)] !=
                sigs[c * static_cast<size_t>(n) + static_cast<size_t>(i)]) {
              same = false;
              break;
            }
          }
          if (!same) continue;
          grouped = true;
          const uint32_t a = resolve(rhs_roots[i]);
          const uint32_t b = resolve(rhs_roots[j]);
          if (a != b) {
            const uint32_t winner = a < b ? a : b;
            const uint32_t loser = a < b ? b : a;
            if ((loser & Value::kNullTag) == 0) {
              out.conflict = true;
              return out;
            }
            parent[loser] = winner;
            ++out.stats.merges;
            changed = true;
          }
          break;
        }
        if (!grouped) bucket.push_back(i);
      }
    }
  }

  // Materialize the resolved relation and export direct-to-root renames.
  for (Tuple& row : out.result.mutable_rows()) {
    for (int c = 0; c < row.arity(); ++c) {
      const uint32_t v = resolve(row[c].raw());
      row[c] = (v & Value::kNullTag) != 0 ? Value::Null(v & ~Value::kNullTag)
                                          : Value::Const(v);
    }
  }
  out.result.Normalize();
  for (const auto& [from, to] : parent) {
    const uint32_t root = resolve(from);
    (void)to;
    out.renames[from] = (root & Value::kNullTag) != 0
                            ? Value::Null(root & ~Value::kNullTag)
                            : Value::Const(root);
  }
  return out;
}

}  // namespace relview
