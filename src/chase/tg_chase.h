// Tuple-generating instance chase: extends the FD-only instance chase
// with join-dependency rules (add the missing recombination tuples), the
// substrate the paper's Section 6(1) direction ("more general
// dependencies") calls for. The JD rule introduces no new symbols —
// generated rows recombine existing cell values — so alternating FD and
// JD passes terminates: FD merges strictly reduce distinct values, JD
// additions are bounded by the finite recombination space.

#ifndef RELVIEW_CHASE_TG_CHASE_H_
#define RELVIEW_CHASE_TG_CHASE_H_

#include <vector>

#include "chase/instance_chase.h"
#include "deps/jd.h"

namespace relview {

struct TGChaseOptions {
  ChaseBackend fd_backend = ChaseBackend::kHash;
  /// Abort (with Internal status semantics: conflict=false, aborted=true)
  /// when the relation would exceed this many rows.
  int max_rows = 200000;
};

struct TGChaseOutcome {
  bool conflict = false;
  /// Row-budget exceeded (result is the partial state).
  bool aborted = false;
  Relation result;
  ChaseStats stats;
  int jd_rows_added = 0;
  std::unordered_map<uint32_t, Value> renames;

  Value Resolve(Value v) const {
    auto it = renames.find(v.raw());
    while (it != renames.end()) {
      v = it->second;
      it = renames.find(v.raw());
    }
    return v;
  }
};

/// Chases `r` with the FDs and JDs to a fixpoint satisfying both (or a
/// constant conflict / row budget abort). Every JD's scope must equal
/// r's attribute set; others are skipped.
TGChaseOutcome ChaseInstanceTG(const Relation& r, const FDSet& fds,
                               const std::vector<JD>& jds,
                               const TGChaseOptions& opts = {});

}  // namespace relview

#endif  // RELVIEW_CHASE_TG_CHASE_H_
