// Dependency implication via the tableau chase: Sigma (FDs + JDs) |= FD /
// MVD / JD / embedded MVD. Polynomial in the tableau size; the MVD/JD tests
// are the polynomial procedures cited by Corollary 1 of the paper
// ([26, 38] in its bibliography).

#ifndef RELVIEW_CHASE_IMPLICATION_H_
#define RELVIEW_CHASE_IMPLICATION_H_

#include <vector>

#include "deps/dep_set.h"
#include "deps/fd_set.h"
#include "deps/jd.h"

namespace relview {

/// Sigma |= lhs -> rhs over universe `universe`. With no JDs this is just
/// the FD closure; with JDs the two-row tableau is chased.
bool ImpliesFD(const AttrSet& universe, const FDSet& fds,
               const std::vector<JD>& jds, const AttrSet& lhs,
               const AttrSet& rhs);

/// Sigma |= *[components...]. Each JD's scope must equal `universe`.
bool ImpliesJD(const AttrSet& universe, const FDSet& fds,
               const std::vector<JD>& jds, const JD& target);

/// Sigma |= *[x, y]; requires x ∪ y == universe.
bool ImpliesMVD(const AttrSet& universe, const FDSet& fds,
                const std::vector<JD>& jds, const AttrSet& x,
                const AttrSet& y);

/// Sigma |= (X ->-> Y | Z embedded in X∪Y∪Z).
bool ImpliesEmbeddedMVD(const AttrSet& universe, const FDSet& fds,
                        const std::vector<JD>& jds, const EmbeddedMVD& emvd);

}  // namespace relview

#endif  // RELVIEW_CHASE_IMPLICATION_H_
