#include "chase/tg_chase.h"

namespace relview {

TGChaseOutcome ChaseInstanceTG(const Relation& r, const FDSet& fds,
                               const std::vector<JD>& jds,
                               const TGChaseOptions& opts) {
  TGChaseOutcome out;
  out.result = r;

  while (true) {
    // FD pass to fixpoint.
    ChaseOutcome fd_out =
        ChaseInstance(out.result, fds, opts.fd_backend);
    out.stats.merges += fd_out.stats.merges;
    out.stats.rounds += fd_out.stats.rounds;
    out.stats.work += fd_out.stats.work;
    // Compose rename chains (each stage renames away from fresh state, so
    // appending entries keeps Resolve() correct).
    for (const auto& [from, to] : fd_out.renames) {
      out.renames[from] = to;
    }
    if (fd_out.conflict) {
      out.conflict = true;
      out.result = std::move(fd_out.result);
      return out;
    }
    out.result = std::move(fd_out.result);

    // JD pass: add the join of the projections.
    int added = 0;
    for (const JD& jd : jds) {
      if (jd.Scope() != out.result.attrs() || jd.components.empty()) {
        continue;
      }
      Relation joined = out.result.Project(jd.components[0]);
      for (size_t i = 1; i < jd.components.size(); ++i) {
        joined =
            Relation::NaturalJoin(joined, out.result.Project(jd.components[i]));
      }
      for (const Tuple& t : joined.rows()) {
        if (!out.result.ContainsRow(t)) {
          if (out.result.size() >= opts.max_rows) {
            out.aborted = true;
            return out;
          }
          out.result.AddRow(t);
          ++added;
        }
      }
    }
    out.jd_rows_added += added;
    if (added == 0) break;
  }
  out.result.Normalize();
  return out;
}

}  // namespace relview
