#include "chase/tableau.h"

#include <unordered_map>

namespace relview {

void Tableau::AddRowDistinguishedOn(const AttrSet& distinguished_on) {
  const Schema& s = rel_.schema();
  Tuple t(s.arity());
  for (int p = 0; p < s.arity(); ++p) {
    const AttrId a = s.cols()[p];
    t[p] = distinguished_on.Contains(a) ? Distinguished(a) : Fresh();
  }
  rel_.AddRow(std::move(t));
}

int Tableau::FDPass(const FDSet& fds) {
  const Schema& s = rel_.schema();
  int merges = 0;
  bool changed = true;
  while (changed) {
    changed = false;
    for (const FD& fd : fds.fds()) {
      if (!fd.lhs.SubsetOf(rel_.attrs()) || !rel_.attrs().Contains(fd.rhs)) {
        continue;
      }
      std::unordered_map<uint64_t, std::vector<int>> groups;
      for (int i = 0; i < rel_.size() && !changed; ++i) {
        const Tuple& t = rel_.row(i);
        auto& bucket = groups[t.HashOn(s, fd.lhs)];
        for (int j : bucket) {
          const Tuple& o = rel_.row(j);
          if (!t.AgreesWith(o, s, fd.lhs)) continue;
          Value a = t.At(s, fd.rhs);
          Value b = o.At(s, fd.rhs);
          if (a == b) continue;
          // Distinguished symbols have the smallest ids, so "smaller id
          // wins" also prefers distinguished symbols.
          if (b < a) std::swap(a, b);
          rel_.RenameValue(/*from=*/b, /*to=*/a);
          ++merges;
          changed = true;
          break;
        }
        if (!changed) bucket.push_back(i);
      }
      if (changed) break;
    }
  }
  return merges;
}

int Tableau::JDPass(const std::vector<JD>& jds) {
  int added = 0;
  for (const JD& jd : jds) {
    if (jd.Scope() != rel_.attrs()) continue;
    // T := T ∪ ⋈_i π_{C_i}(T); the join of projections computed pairwise.
    Relation joined = rel_.Project(jd.components[0]);
    for (size_t i = 1; i < jd.components.size(); ++i) {
      joined = Relation::NaturalJoin(joined, rel_.Project(jd.components[i]));
    }
    for (const Tuple& t : joined.rows()) {
      if (!rel_.ContainsRow(t)) {
        rel_.AddRow(t);
        ++added;
      }
    }
  }
  return added;
}

int Tableau::Chase(const FDSet& fds, const std::vector<JD>& jds) {
  int applications = 0;
  while (true) {
    const int merges = FDPass(fds);
    applications += merges;
    const int added = JDPass(jds);
    applications += added;
    if (added == 0) {
      // FD fixpoint was reached inside FDPass and no JD rule fired.
      break;
    }
  }
  rel_.Normalize();
  return applications;
}

bool Tableau::HasRowDistinguishedOn(const AttrSet& on) const {
  const Schema& s = rel_.schema();
  for (const Tuple& t : rel_.rows()) {
    bool all = true;
    on.ForEach([&](AttrId a) {
      if (t.At(s, a) != Distinguished(a)) all = false;
    });
    if (all) return true;
  }
  return false;
}

}  // namespace relview
