// A compact DPLL SAT solver (unit propagation + pure-literal elimination +
// branching). Oracle for validating the NP-hardness reductions (Theorems 2
// and 7) and, negated, the co-NP reduction (Theorem 5).

#ifndef RELVIEW_SOLVERS_DPLL_H_
#define RELVIEW_SOLVERS_DPLL_H_

#include <optional>
#include <vector>

#include "solvers/cnf.h"

namespace relview {

struct SatResult {
  bool satisfiable = false;
  /// A model when satisfiable.
  std::vector<bool> assignment;
  int64_t decisions = 0;
};

/// Decides satisfiability of `f`. Assignments to variables listed in
/// `fixed` (pairs of var -> value) are forced before search — used by the
/// QBF solver to check inner existentials under an outer assignment.
SatResult SolveSat(const CNF3& f,
                   const std::vector<std::pair<int, bool>>& fixed = {});

/// ∀∃ 2-QBF: for every assignment of vars [0, num_universal) does an
/// assignment of the rest satisfy f? (The Pi_2 form of Theorem 4's
/// source problem.) Exponential in num_universal.
bool ForallExistsSat(const CNF3& f, int num_universal, int64_t* calls = nullptr);

}  // namespace relview

#endif  // RELVIEW_SOLVERS_DPLL_H_
