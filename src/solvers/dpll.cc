#include "solvers/dpll.h"

namespace relview {

namespace {

constexpr int8_t kUnset = -1;

/// Recursive DPLL over a 3-CNF. `assign` holds -1/0/1.
bool Dpll(const CNF3& f, std::vector<int8_t>* assign, int64_t* decisions) {
  // Unit propagation loop.
  while (true) {
    bool propagated = false;
    for (const Clause3& c : f.clauses) {
      int unassigned = -1;
      bool sat = false;
      int free_count = 0;
      for (const Lit& l : c) {
        const int8_t v = (*assign)[l.var];
        if (v == kUnset) {
          ++free_count;
          unassigned = l.var;
        } else if ((v == 1) == l.positive) {
          sat = true;
        }
      }
      if (sat) continue;
      if (free_count == 0) return false;  // conflict
      if (free_count == 1) {
        // Find the unassigned literal's required polarity.
        for (const Lit& l : c) {
          if ((*assign)[l.var] == kUnset && l.var == unassigned) {
            (*assign)[l.var] = l.positive ? 1 : 0;
            break;
          }
        }
        propagated = true;
      }
    }
    if (!propagated) break;
  }
  // Pick a branching variable: first unassigned appearing in an unsatisfied
  // clause.
  int branch = -1;
  for (const Clause3& c : f.clauses) {
    bool sat = false;
    for (const Lit& l : c) {
      const int8_t v = (*assign)[l.var];
      if (v != kUnset && (v == 1) == l.positive) sat = true;
    }
    if (sat) continue;
    for (const Lit& l : c) {
      if ((*assign)[l.var] == kUnset) {
        branch = l.var;
        break;
      }
    }
    if (branch >= 0) break;
  }
  if (branch < 0) return true;  // every clause satisfied

  ++*decisions;
  for (int8_t value : {int8_t{1}, int8_t{0}}) {
    std::vector<int8_t> saved = *assign;
    (*assign)[branch] = value;
    if (Dpll(f, assign, decisions)) return true;
    *assign = saved;
  }
  return false;
}

}  // namespace

SatResult SolveSat(const CNF3& f,
                   const std::vector<std::pair<int, bool>>& fixed) {
  SatResult result;
  std::vector<int8_t> assign(f.num_vars, kUnset);
  for (const auto& [var, value] : fixed) assign[var] = value ? 1 : 0;
  result.satisfiable = Dpll(f, &assign, &result.decisions);
  if (result.satisfiable) {
    result.assignment.resize(f.num_vars);
    for (int i = 0; i < f.num_vars; ++i) {
      result.assignment[i] = assign[i] == 1;  // unassigned -> false
    }
  }
  return result;
}

bool ForallExistsSat(const CNF3& f, int num_universal, int64_t* calls) {
  std::vector<std::pair<int, bool>> fixed(num_universal);
  const uint64_t total = 1ULL << num_universal;
  for (uint64_t mask = 0; mask < total; ++mask) {
    for (int i = 0; i < num_universal; ++i) {
      fixed[i] = {i, (mask >> i) & 1};
    }
    if (calls != nullptr) ++*calls;
    if (!SolveSat(f, fixed).satisfiable) return false;
  }
  return true;
}

}  // namespace relview
