#include "solvers/cnf.h"

namespace relview {

std::string CNF3::ToString() const {
  std::string out;
  for (size_t i = 0; i < clauses.size(); ++i) {
    if (i) out += " & ";
    out += "(" + clauses[i][0].ToString() + " | " +
           clauses[i][1].ToString() + " | " + clauses[i][2].ToString() + ")";
  }
  return out;
}

CNF3 CNF3::Random(int n, int m, Rng* rng) {
  CNF3 f;
  f.num_vars = n;
  f.clauses.reserve(m);
  for (int j = 0; j < m; ++j) {
    Clause3 c;
    int v0 = static_cast<int>(rng->Below(n));
    int v1 = v0, v2 = v0;
    if (n >= 3) {
      while (v1 == v0) v1 = static_cast<int>(rng->Below(n));
      while (v2 == v0 || v2 == v1) v2 = static_cast<int>(rng->Below(n));
    }
    c[0] = Lit(v0, rng->Chance(0.5));
    c[1] = Lit(v1, rng->Chance(0.5));
    c[2] = Lit(v2, rng->Chance(0.5));
    f.clauses.push_back(c);
  }
  return f;
}

}  // namespace relview
