// 3-CNF formula representation shared by the SAT/QBF solvers and the
// paper's hardness reductions (Theorems 2, 4, 5, 7).

#ifndef RELVIEW_SOLVERS_CNF_H_
#define RELVIEW_SOLVERS_CNF_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "util/rng.h"

namespace relview {

/// A literal: variable index (0-based) plus sign.
struct Lit {
  int var = 0;
  bool positive = true;

  Lit() = default;
  Lit(int v, bool pos) : var(v), positive(pos) {}

  Lit Negated() const { return Lit(var, !positive); }
  std::string ToString() const {
    return (positive ? "x" : "~x") + std::to_string(var);
  }
};

/// A clause of exactly three literals (duplicated literals are allowed, so
/// shorter clauses can be padded).
using Clause3 = std::array<Lit, 3>;

struct CNF3 {
  int num_vars = 0;
  std::vector<Clause3> clauses;

  /// Evaluates under a full assignment.
  bool Eval(const std::vector<bool>& assignment) const {
    for (const Clause3& c : clauses) {
      bool sat = false;
      for (const Lit& l : c) {
        if (assignment[l.var] == l.positive) sat = true;
      }
      if (!sat) return false;
    }
    return true;
  }

  std::string ToString() const;

  /// A random 3-CNF with `n` variables and `m` clauses (distinct variables
  /// within each clause when n >= 3).
  static CNF3 Random(int n, int m, Rng* rng);
};

}  // namespace relview

#endif  // RELVIEW_SOLVERS_CNF_H_
