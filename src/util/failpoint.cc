#include "util/failpoint.h"

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <thread>

#include "util/annotations.h"

namespace relview {
namespace {

struct Arm {
  FailpointAction action = FailpointAction::kOff;
  uint64_t arg = 0;
  uint64_t nth = 1;    // first hit that fires (1-based)
  uint64_t times = 1;  // consecutive firing hits; 0 = unlimited
  uint64_t hits = 0;   // hits observed since arming
};

struct Registry {
  Mutex mu;
  std::map<std::string, Arm> arms RELVIEW_GUARDED_BY(mu);
};

Registry& GetRegistry() {
  static Registry* r = new Registry();  // leaked: usable during shutdown
  return *r;
}

// Fast-path gate: number of armed failpoints. Zero means Check returns
// immediately without touching the registry lock.
std::atomic<int> g_armed{0};

Result<Arm> ParseSpec(const std::string& spec) {
  // <action>[@<nth>][*<times>][:<arg>]
  Arm arm;
  size_t end = spec.find_first_of("@*:");
  const std::string action = spec.substr(0, end);
  if (action == "off" || action.empty()) {
    arm.action = FailpointAction::kOff;
  } else if (action == "error") {
    arm.action = FailpointAction::kError;
  } else if (action == "short") {
    arm.action = FailpointAction::kShortWrite;
  } else if (action == "crash") {
    arm.action = FailpointAction::kCrash;
  } else if (action == "flip") {
    arm.action = FailpointAction::kFlipBit;
    arm.arg = 1;
  } else if (action == "sleep") {
    arm.action = FailpointAction::kSleep;
    arm.arg = 10;
  } else {
    return Status::InvalidArgument(
        "failpoint action '" + action +
        "' (want error|short|crash|flip|sleep|off)");
  }
  size_t pos = end;
  while (pos != std::string::npos && pos < spec.size()) {
    const char tag = spec[pos];
    size_t next = spec.find_first_of("@*:", pos + 1);
    const std::string num = spec.substr(
        pos + 1, next == std::string::npos ? next : next - pos - 1);
    char* parse_end = nullptr;
    const unsigned long long v = std::strtoull(num.c_str(), &parse_end, 10);
    if (num.empty() || parse_end == nullptr || *parse_end != '\0') {
      return Status::InvalidArgument("failpoint spec: bad number after '" +
                                     std::string(1, tag) + "' in '" + spec +
                                     "'");
    }
    if (tag == '@') {
      if (v == 0) {
        return Status::InvalidArgument("failpoint spec: @nth is 1-based");
      }
      arm.nth = v;
    } else if (tag == '*') {
      arm.times = v;
    } else {  // ':'
      arm.arg = v;
    }
    pos = next;
  }
  return arm;
}

}  // namespace

Status Failpoints::Set(const std::string& name, const std::string& spec) {
  RELVIEW_ASSIGN_OR_RETURN(Arm arm, ParseSpec(spec));
  Registry& r = GetRegistry();
  MutexLock lock(r.mu);
  auto it = r.arms.find(name);
  if (arm.action == FailpointAction::kOff) {
    if (it != r.arms.end()) {
      r.arms.erase(it);
      g_armed.fetch_sub(1, std::memory_order_release);
    }
    return Status::OK();
  }
  if (it == r.arms.end()) {
    r.arms.emplace(name, arm);
    g_armed.fetch_add(1, std::memory_order_release);
  } else {
    it->second = arm;  // re-arm: counter restarts at zero
  }
  return Status::OK();
}

void Failpoints::Clear(const std::string& name) {
  Registry& r = GetRegistry();
  MutexLock lock(r.mu);
  if (r.arms.erase(name) > 0) {
    g_armed.fetch_sub(1, std::memory_order_release);
  }
}

void Failpoints::ClearAll() {
  Registry& r = GetRegistry();
  MutexLock lock(r.mu);
  g_armed.fetch_sub(static_cast<int>(r.arms.size()),
                    std::memory_order_release);
  r.arms.clear();
}

Status Failpoints::InstallFromEnv(const char* env_var) {
  const char* value = std::getenv(env_var);
  if (value == nullptr || *value == '\0') return Status::OK();
  std::string text(value);
  size_t begin = 0;
  while (begin < text.size()) {
    size_t end = text.find(';', begin);
    if (end == std::string::npos) end = text.size();
    const std::string pair = text.substr(begin, end - begin);
    begin = end + 1;
    if (pair.empty()) continue;
    const size_t eq = pair.find('=');
    if (eq == std::string::npos || eq == 0) {
      return Status::InvalidArgument(std::string(env_var) +
                                     ": want name=spec, got '" + pair + "'");
    }
    RELVIEW_RETURN_IF_ERROR(Set(pair.substr(0, eq), pair.substr(eq + 1)));
  }
  return Status::OK();
}

FailpointHit Failpoints::Check(const char* name) {
  if (g_armed.load(std::memory_order_acquire) == 0) return {};
  Registry& r = GetRegistry();
  FailpointHit hit;
  {
    MutexLock lock(r.mu);
    auto it = r.arms.find(name);
    if (it == r.arms.end()) return {};
    Arm& arm = it->second;
    ++arm.hits;
    const bool fires =
        arm.hits >= arm.nth &&
        (arm.times == 0 || arm.hits < arm.nth + arm.times);
    if (!fires) return {};
    hit.action = arm.action;
    hit.arg = arm.arg;
  }
  if (hit.action == FailpointAction::kCrash) {
    // Simulated power loss: no destructors, no stream flushes, nothing.
    std::fprintf(stderr, "relview: failpoint '%s' crashing process\n", name);
    ::_exit(kCrashExitCode);
  }
  if (hit.action == FailpointAction::kSleep) {
    // Delay, not fault: block here (outside the registry lock), then tell
    // the site nothing happened so it proceeds down its normal path.
    std::this_thread::sleep_for(std::chrono::milliseconds(hit.arg));
    return {};
  }
  return hit;
}

uint64_t Failpoints::Hits(const std::string& name) {
  Registry& r = GetRegistry();
  MutexLock lock(r.mu);
  auto it = r.arms.find(name);
  return it == r.arms.end() ? 0 : it->second.hits;
}

std::vector<std::string> Failpoints::Armed() {
  Registry& r = GetRegistry();
  MutexLock lock(r.mu);
  std::vector<std::string> out;
  out.reserve(r.arms.size());
  for (const auto& [name, arm] : r.arms) out.push_back(name);
  return out;
}

}  // namespace relview
