// Small threading helpers for the service benchmarks and concurrency
// tests: a start gate that releases a gang of threads simultaneously (so
// measured intervals don't include staggered thread startup), and a
// fixed-size thread pool with a blocking task queue.
//
// Both classes carry clang thread-safety annotations (util/annotations.h):
// the queue and flags are RELVIEW_GUARDED_BY their mutex, and waits are
// explicit loops so the guarded reads inside the predicates stay visible
// to the analysis.

#ifndef RELVIEW_UTIL_THREAD_POOL_H_
#define RELVIEW_UTIL_THREAD_POOL_H_

#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "util/annotations.h"

namespace relview {

/// One-shot gate: workers Wait(), the coordinator Open()s once, everyone
/// proceeds. Reusable is not needed; create a fresh gate per run.
class StartGate {
 public:
  void Wait() RELVIEW_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    while (!open_) cv_.Wait(mu_);
  }

  void Open() RELVIEW_EXCLUDES(mu_) {
    {
      MutexLock lock(mu_);
      open_ = true;
    }
    cv_.NotifyAll();
  }

 private:
  Mutex mu_;
  CondVar cv_;
  bool open_ RELVIEW_GUARDED_BY(mu_) = false;
};

/// A fixed pool of worker threads draining a FIFO task queue. Destruction
/// drains outstanding tasks, then joins.
class ThreadPool {
 public:
  explicit ThreadPool(int num_threads) {
    for (int i = 0; i < num_threads; ++i) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }

  ~ThreadPool() {
    {
      MutexLock lock(mu_);
      stopping_ = true;
    }
    work_cv_.NotifyAll();
    for (std::thread& t : workers_) t.join();
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  void Submit(std::function<void()> task) RELVIEW_EXCLUDES(mu_) {
    {
      MutexLock lock(mu_);
      queue_.push_back(std::move(task));
      ++pending_;
    }
    work_cv_.NotifyOne();
  }

  /// Blocks until every submitted task has finished running.
  void Wait() RELVIEW_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    while (pending_ != 0) idle_cv_.Wait(mu_);
  }

  int size() const { return static_cast<int>(workers_.size()); }

 private:
  void WorkerLoop() RELVIEW_EXCLUDES(mu_) {
    while (true) {
      std::function<void()> task;
      {
        MutexLock lock(mu_);
        while (!stopping_ && queue_.empty()) work_cv_.Wait(mu_);
        if (queue_.empty()) return;  // stopping_ and drained
        task = std::move(queue_.front());
        queue_.pop_front();
      }
      task();
      {
        MutexLock lock(mu_);
        if (--pending_ == 0) idle_cv_.NotifyAll();
      }
    }
  }

  Mutex mu_;
  CondVar work_cv_;
  CondVar idle_cv_;
  std::deque<std::function<void()>> queue_ RELVIEW_GUARDED_BY(mu_);
  int pending_ RELVIEW_GUARDED_BY(mu_) = 0;
  bool stopping_ RELVIEW_GUARDED_BY(mu_) = false;
  std::vector<std::thread> workers_;
};

}  // namespace relview

#endif  // RELVIEW_UTIL_THREAD_POOL_H_
