// Small threading helpers for the service benchmarks and concurrency
// tests: a start gate that releases a gang of threads simultaneously (so
// measured intervals don't include staggered thread startup), and a
// fixed-size thread pool with a blocking task queue.

#ifndef RELVIEW_UTIL_THREAD_POOL_H_
#define RELVIEW_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace relview {

/// One-shot gate: workers Wait(), the coordinator Open()s once, everyone
/// proceeds. Reusable is not needed; create a fresh gate per run.
class StartGate {
 public:
  void Wait() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return open_; });
  }

  void Open() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      open_ = true;
    }
    cv_.notify_all();
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  bool open_ = false;
};

/// A fixed pool of worker threads draining a FIFO task queue. Destruction
/// drains outstanding tasks, then joins.
class ThreadPool {
 public:
  explicit ThreadPool(int num_threads) {
    for (int i = 0; i < num_threads; ++i) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stopping_ = true;
    }
    work_cv_.notify_all();
    for (std::thread& t : workers_) t.join();
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  void Submit(std::function<void()> task) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      queue_.push_back(std::move(task));
      ++pending_;
    }
    work_cv_.notify_one();
  }

  /// Blocks until every submitted task has finished running.
  void Wait() {
    std::unique_lock<std::mutex> lock(mu_);
    idle_cv_.wait(lock, [this] { return pending_ == 0; });
  }

  int size() const { return static_cast<int>(workers_.size()); }

 private:
  void WorkerLoop() {
    while (true) {
      std::function<void()> task;
      {
        std::unique_lock<std::mutex> lock(mu_);
        work_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
        if (queue_.empty()) return;  // stopping_ and drained
        task = std::move(queue_.front());
        queue_.pop_front();
      }
      task();
      {
        std::lock_guard<std::mutex> lock(mu_);
        if (--pending_ == 0) idle_cv_.notify_all();
      }
    }
  }

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable idle_cv_;
  std::deque<std::function<void()>> queue_;
  int pending_ = 0;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace relview

#endif  // RELVIEW_UTIL_THREAD_POOL_H_
