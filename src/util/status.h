// Status and Result<T>: exception-free error propagation for the relview
// library, in the style of RocksDB's Status / Arrow's Result.
//
// Public library entry points that can fail return Status (or Result<T> when
// they produce a value). Internal invariant violations use RELVIEW_DCHECK.

#ifndef RELVIEW_UTIL_STATUS_H_
#define RELVIEW_UTIL_STATUS_H_

#include <cstdlib>
#include <cstdio>
#include <optional>
#include <string>
#include <utility>

namespace relview {

/// Error taxonomy for the relview library.
enum class StatusCode {
  kOk = 0,
  /// Malformed input: unknown attribute, schema mismatch, arity error.
  kInvalidArgument,
  /// A requested object does not exist (attribute, tuple, complement).
  kNotFound,
  /// The operation is well-formed but its precondition fails (e.g. the
  /// proposed views are not complementary, or X ∩ Y is a superkey of X).
  kFailedPrecondition,
  /// The requested view update is not translatable under the chosen
  /// constant complement (the paper's rejection outcome).
  kUntranslatable,
  /// A size or capacity limit was exceeded (e.g. > 256 attributes).
  kCapacityExceeded,
  /// Internal invariant violation; indicates a bug in relview itself.
  kInternal,
  /// On-disk state failed an integrity check (journal/checkpoint checksum
  /// mismatch, torn record, sequence gap). Distinguished from kInternal
  /// because the fix is operational (see docs/OPERATIONS.md), not a code
  /// bug.
  kCorruption,
  /// Sentinel — number of real codes above. Keep last; ServiceMetrics
  /// sizes its per-code counters from it.
  kNumStatusCodes,
};

/// Human-readable name of a StatusCode ("Ok", "Untranslatable", ...).
const char* StatusCodeName(StatusCode code);

/// Internal consistency check; compiled in all build types because the
/// library's algorithms are the product under test.
#define RELVIEW_DCHECK(cond, msg)                                        \
  do {                                                                   \
    if (!(cond)) {                                                       \
      std::fprintf(stderr, "relview DCHECK failed at %s:%d: %s\n",       \
                   __FILE__, __LINE__, (msg));                           \
      std::abort();                                                      \
    }                                                                    \
  } while (0)

/// A success-or-error value. Cheap to copy in the success case (no
/// allocation); carries a message string on error.
///
/// [[nodiscard]]: a dropped Status is a swallowed failure, so every
/// Status-returning call must be consumed — propagated, checked, or
/// explicitly voided with a comment saying why failure is impossible or
/// irrelevant there.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Untranslatable(std::string msg) {
    return Status(StatusCode::kUntranslatable, std::move(msg));
  }
  static Status CapacityExceeded(std::string msg) {
    return Status(StatusCode::kCapacityExceeded, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Position of the originating update within a batch (ApplyBatch
  /// rollback rejections); -1 when the status is not batch-scoped.
  int batch_index() const { return batch_index_; }
  /// Fluent payload attachment: `return st.WithBatchIndex(i);`.
  Status&& WithBatchIndex(int index) && {
    batch_index_ = index;
    return std::move(*this);
  }
  Status& WithBatchIndex(int index) & {
    batch_index_ = index;
    return *this;
  }

  /// "Ok" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const { return code_ == other.code_; }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
  int batch_index_ = -1;
};

/// A value-or-error. Use `RELVIEW_ASSIGN_OR_RETURN` to unwrap in functions
/// that themselves return Status/Result. [[nodiscard]] for the same reason
/// as Status: discarding one silently drops both the value and the error.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit construction from a non-OK status (error).
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    RELVIEW_DCHECK(!status_.ok(),
                   "Result constructed from OK status without value");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  /// Precondition: ok(). Aborts otherwise.
  const T& value() const& {
    CheckOk();
    return *value_;
  }
  T& value() & {
    CheckOk();
    return *value_;
  }
  T&& value() && {
    CheckOk();
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the contained value or `fallback` when in the error state.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  void CheckOk() const {
    if (!ok()) {
      std::fprintf(stderr, "relview: Result::value() on error: %s\n",
                   status_.ToString().c_str());
      std::abort();
    }
  }

  std::optional<T> value_;
  Status status_;
};

#define RELVIEW_RETURN_IF_ERROR(expr)             \
  do {                                            \
    ::relview::Status _st = (expr);               \
    if (!_st.ok()) return _st;                    \
  } while (0)

#define RELVIEW_CONCAT_IMPL(a, b) a##b
#define RELVIEW_CONCAT(a, b) RELVIEW_CONCAT_IMPL(a, b)

#define RELVIEW_ASSIGN_OR_RETURN(lhs, expr)                        \
  auto RELVIEW_CONCAT(_res_, __LINE__) = (expr);                   \
  if (!RELVIEW_CONCAT(_res_, __LINE__).ok())                       \
    return RELVIEW_CONCAT(_res_, __LINE__).status();               \
  lhs = std::move(RELVIEW_CONCAT(_res_, __LINE__)).value()

}  // namespace relview

#endif  // RELVIEW_UTIL_STATUS_H_
