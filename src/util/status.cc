#include "util/status.h"

namespace relview {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "Ok";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kUntranslatable:
      return "Untranslatable";
    case StatusCode::kCapacityExceeded:
      return "CapacityExceeded";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kNumStatusCodes:
      break;  // sentinel, not a real code
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "Ok";
  std::string out = StatusCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace relview
