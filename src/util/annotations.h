// Clang thread-safety-analysis annotations and capability-annotated
// synchronization wrappers for the relview library.
//
// The annotations turn the locking discipline documented in comments
// ("guarded by writer_mu_", "call only under the service's writer mutex")
// into compile-time checked contracts: building with
//
//   clang++ -Wthread-safety -Werror
//
// rejects any access to a RELVIEW_GUARDED_BY member without its mutex
// held, any call to a RELVIEW_REQUIRES function without its capability,
// and any double- or cross-order acquisition the annotations rule out.
// CI runs exactly that build (see .github/workflows/ci.yml, job
// `thread-safety`); under GCC and other compilers the macros expand to
// nothing, so the annotated tree stays portable.
//
// Library code must use the relview::Mutex / relview::SharedMutex /
// relview::CondVar wrappers below instead of the raw std types: the std
// types carry no capability attributes on libstdc++, so locking them is
// invisible to the analysis. tools/relview_lint.py enforces this (rule
// `naked-mutex`) together with the companion rule that every Mutex
// member has at least one RELVIEW_GUARDED_BY / RELVIEW_REQUIRES /
// RELVIEW_ACQUIRE user in its file.
//
// Annotation vocabulary (mirrors the clang attribute of the same name):
//
//   RELVIEW_GUARDED_BY(mu)     member readable/writable only with mu held
//   RELVIEW_PT_GUARDED_BY(mu)  pointer member whose *pointee* needs mu
//   RELVIEW_REQUIRES(mu)       function callable only with mu held
//   RELVIEW_REQUIRES_SHARED(mu) ... with mu held at least shared
//   RELVIEW_EXCLUDES(mu)       function callable only with mu NOT held
//                              (annotate public entry points that lock mu
//                              themselves, making self-deadlock a
//                              compile error)
//   RELVIEW_ACQUIRE(...)       function acquires the capability
//   RELVIEW_ACQUIRE_SHARED(...)
//   RELVIEW_RELEASE(...)       function releases the capability
//   RELVIEW_RELEASE_SHARED(...)
//   RELVIEW_TRY_ACQUIRE(b, ...) acquires iff the return value is b
//   RELVIEW_ACQUIRED_BEFORE/AFTER(...)  static lock-order edges
//   RELVIEW_NO_THREAD_SAFETY_ANALYSIS  opt a definition out (last resort;
//                              say why in a comment)

#ifndef RELVIEW_UTIL_ANNOTATIONS_H_
#define RELVIEW_UTIL_ANNOTATIONS_H_

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#if defined(__clang__) && (!defined(SWIG))
#define RELVIEW_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define RELVIEW_THREAD_ANNOTATION(x)  // no-op outside clang
#endif

#define RELVIEW_CAPABILITY(x) RELVIEW_THREAD_ANNOTATION(capability(x))
#define RELVIEW_SCOPED_CAPABILITY RELVIEW_THREAD_ANNOTATION(scoped_lockable)
#define RELVIEW_GUARDED_BY(x) RELVIEW_THREAD_ANNOTATION(guarded_by(x))
#define RELVIEW_PT_GUARDED_BY(x) RELVIEW_THREAD_ANNOTATION(pt_guarded_by(x))
#define RELVIEW_ACQUIRED_BEFORE(...) \
  RELVIEW_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define RELVIEW_ACQUIRED_AFTER(...) \
  RELVIEW_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))
#define RELVIEW_REQUIRES(...) \
  RELVIEW_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define RELVIEW_REQUIRES_SHARED(...) \
  RELVIEW_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))
#define RELVIEW_ACQUIRE(...) \
  RELVIEW_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define RELVIEW_ACQUIRE_SHARED(...) \
  RELVIEW_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#define RELVIEW_RELEASE(...) \
  RELVIEW_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define RELVIEW_RELEASE_SHARED(...) \
  RELVIEW_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
#define RELVIEW_TRY_ACQUIRE(...) \
  RELVIEW_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define RELVIEW_EXCLUDES(...) \
  RELVIEW_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define RELVIEW_RETURN_CAPABILITY(x) \
  RELVIEW_THREAD_ANNOTATION(lock_returned(x))
#define RELVIEW_NO_THREAD_SAFETY_ANALYSIS \
  RELVIEW_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace relview {

/// std::mutex with the `mutex` capability, so acquisitions are visible to
/// -Wthread-safety. Satisfies BasicLockable/Lockable; prefer the MutexLock
/// guard over calling lock()/unlock() directly.
class RELVIEW_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() RELVIEW_ACQUIRE() { mu_.lock(); }
  void unlock() RELVIEW_RELEASE() { mu_.unlock(); }
  bool try_lock() RELVIEW_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// std::shared_mutex with the `mutex` capability: exclusive (writer) and
/// shared (reader) modes both tracked by the analysis.
class RELVIEW_CAPABILITY("mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void lock() RELVIEW_ACQUIRE() { mu_.lock(); }
  void unlock() RELVIEW_RELEASE() { mu_.unlock(); }
  bool try_lock() RELVIEW_TRY_ACQUIRE(true) { return mu_.try_lock(); }
  void lock_shared() RELVIEW_ACQUIRE_SHARED() { mu_.lock_shared(); }
  void unlock_shared() RELVIEW_RELEASE_SHARED() { mu_.unlock_shared(); }
  bool try_lock_shared() RELVIEW_TRY_ACQUIRE(true) {
    return mu_.try_lock_shared();
  }

 private:
  std::shared_mutex mu_;
};

/// RAII exclusive lock of a Mutex (std::lock_guard is unannotated on
/// libstdc++, so the analysis would not see it).
class RELVIEW_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) RELVIEW_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() RELVIEW_RELEASE() { mu_.unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// RAII exclusive lock of a SharedMutex (the writer side).
class RELVIEW_SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex& mu) RELVIEW_ACQUIRE(mu) : mu_(mu) {
    mu_.lock();
  }
  ~WriterMutexLock() RELVIEW_RELEASE() { mu_.unlock(); }
  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// RAII shared lock of a SharedMutex (the reader side).
class RELVIEW_SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex& mu) RELVIEW_ACQUIRE_SHARED(mu)
      : mu_(mu) {
    mu_.lock_shared();
  }
  ~ReaderMutexLock() RELVIEW_RELEASE() { mu_.unlock_shared(); }
  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// Condition variable usable with the annotated Mutex. Waits are expressed
/// as explicit `while (!pred) cv.Wait(mu);` loops rather than predicate
/// lambdas: the loop body stays inside the REQUIRES(mu) function, so the
/// analysis keeps checking the guarded reads the predicate performs.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu`, sleeps, and reacquires `mu` before
  /// returning. Spurious wakeups are possible — always wait in a loop.
  void Wait(Mutex& mu) RELVIEW_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();  // mu stays locked; the guard must not unlock it
  }

  /// Timed wait: releases `mu`, sleeps at most `timeout`, reacquires `mu`.
  /// Returns false when the timeout elapsed (spurious wakeups return true;
  /// always re-check the predicate in a loop either way).
  bool WaitFor(Mutex& mu, std::chrono::nanoseconds timeout)
      RELVIEW_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    const bool woke = cv_.wait_for(lock, timeout) == std::cv_status::no_timeout;
    lock.release();  // mu stays locked; the guard must not unlock it
    return woke;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace relview

#endif  // RELVIEW_UTIL_ANNOTATIONS_H_
