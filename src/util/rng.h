// Deterministic pseudo-random number generation for tests, benchmarks and
// instance generators. Every randomized component in relview takes an
// explicit seed so runs are reproducible.

#ifndef RELVIEW_UTIL_RNG_H_
#define RELVIEW_UTIL_RNG_H_

#include <cstdint>

namespace relview {

/// SplitMix64: used to expand a single seed into the xoshiro state.
inline uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** by Blackman & Vigna: fast, high-quality, 2^256-1 period.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0xC05A0DA1C15ULL) {
    uint64_t sm = seed;
    for (auto& word : state_) word = SplitMix64(&sm);
  }

  uint64_t Next() {
    const uint64_t result = RotL(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = RotL(state_[3], 45);
    return result;
  }

  /// Uniform in [0, bound). bound == 0 yields 0.
  uint64_t Below(uint64_t bound) {
    if (bound == 0) return 0;
    // Lemire's multiply-shift rejection method.
    uint64_t x = Next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    uint64_t low = static_cast<uint64_t>(m);
    if (low < bound) {
      const uint64_t threshold = (0 - bound) % bound;
      while (low < threshold) {
        x = Next();
        m = static_cast<__uint128_t>(x) * bound;
        low = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t Range(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(
                    Below(static_cast<uint64_t>(hi - lo) + 1));
  }

  /// Bernoulli(p) with p in [0,1].
  bool Chance(double p) {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53 < p;
  }

 private:
  static uint64_t RotL(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4];
};

}  // namespace relview

#endif  // RELVIEW_UTIL_RNG_H_
