// Small shared helpers: timing, string joining, hashing combinators.

#ifndef RELVIEW_UTIL_SMALL_UTIL_H_
#define RELVIEW_UTIL_SMALL_UTIL_H_

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

namespace relview {

/// Monotonic wall-clock stopwatch (nanosecond resolution).
class Timer {
 public:
  Timer() : start_(Clock::now()) {}
  void Reset() { start_ = Clock::now(); }
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  int64_t ElapsedNanos() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Joins `parts` with `sep` ("A", "B" -> "A,B").
inline std::string Join(const std::vector<std::string>& parts,
                        const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

/// 64-bit hash mixing (murmur-style finalizer); used to combine hashes.
inline uint64_t HashMix(uint64_t h) {
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 33;
  h *= 0xc4ceb9fe1a85ec53ULL;
  h ^= h >> 33;
  return h;
}

inline uint64_t HashCombine(uint64_t seed, uint64_t value) {
  return HashMix(seed ^ (value + 0x9e3779b97f4a7c15ULL + (seed << 6) +
                         (seed >> 2)));
}

}  // namespace relview

#endif  // RELVIEW_UTIL_SMALL_UTIL_H_
