// Failpoints: deterministic fault injection for the durability paths.
//
// A failpoint is a named site compiled into production code (journal
// writes, checkpoint renames, fsyncs). It is inert until *armed* — by a
// test via Failpoints::Set, or by an operator via the RELVIEW_FAILPOINTS
// environment variable — and then fires a prescribed fault on a
// prescribed hit count, so every failure schedule is reproducible from a
// one-line spec. The disarmed fast path is one relaxed atomic load.
//
// Spec grammar (one failpoint):
//
//   <action>[@<nth>][*<times>][:<arg>]
//
//   action  error       site reports an injected I/O error
//           short       site performs a short write (arg = bytes kept;
//                       default: half the buffer), then reports an error
//           crash       the process exits immediately with
//                       kCrashExitCode (no destructors, no flushes —
//                       simulates kill -9 / power loss)
//           flip        site flips one bit in the data it is about to
//                       write (arg = byte offset from the end; default 1)
//           sleep       Check blocks for arg milliseconds (default 10),
//                       then reports NO fault — the site proceeds
//                       normally, just late. Simulates a stalled disk /
//                       fsync outlier for the latency watchdogs without
//                       tripping any error path.
//           off         disarm
//   @nth    first hit that fires, 1-based (default 1: fire immediately)
//   *times  number of consecutive hits that fire (default 1;
//           *0 = unlimited)
//
// Environment form (RELVIEW_FAILPOINTS): semicolon-separated
// "name=spec" pairs, e.g.
//
//   RELVIEW_FAILPOINTS="journal.fsync=error@3;checkpoint.rename=crash"
//
// Sites (see docs/OPERATIONS.md for the full catalog) call
// Failpoints::Check("name") on every pass; the returned FailpointHit
// says which fault, if any, to inject. kCrash is handled inside Check —
// the call does not return.

#ifndef RELVIEW_UTIL_FAILPOINT_H_
#define RELVIEW_UTIL_FAILPOINT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace relview {

/// The fault a failpoint site must inject on this hit.
enum class FailpointAction {
  /// No fault; proceed normally.
  kOff = 0,
  /// Report an injected I/O error (sites use their real error path).
  kError,
  /// Write only FailpointHit::arg bytes, then report an error.
  kShortWrite,
  /// Process exit without cleanup (performed inside Check; never seen).
  kCrash,
  /// Flip one bit of the outgoing data, FailpointHit::arg bytes from its
  /// end, then proceed "successfully" (simulates silent corruption).
  kFlipBit,
  /// Delay injection: Check sleeps `arg` milliseconds and then reports
  /// kOff (performed inside Check; never seen by sites). Simulates a
  /// stalled device without taking any error path.
  kSleep,
};

/// Verdict of one Failpoints::Check call.
struct FailpointHit {
  FailpointAction action = FailpointAction::kOff;
  /// kShortWrite: bytes to keep (0 = keep half). kFlipBit: byte offset
  /// from the end of the buffer whose low bit to flip.
  uint64_t arg = 0;

  /// True when a fault must be injected.
  explicit operator bool() const { return action != FailpointAction::kOff; }
};

/// Marks a named fault-injection site. Expands to Failpoints::Check; use
/// the macro (not a direct call) so tools/relview_lint.py can enforce
/// that every site name is unique across the tree and documented in
/// docs/OPERATIONS.md. `name` must be a string literal.
#define RELVIEW_FAILPOINT(name) ::relview::Failpoints::Check(name)

/// Process-wide registry of armed failpoints. All methods are
/// thread-safe; Check is wait-free when nothing is armed.
class Failpoints {
 public:
  /// Exit code used by `crash` so harnesses can distinguish an injected
  /// crash from a real abort.
  static constexpr int kCrashExitCode = 42;

  /// Arms (or re-arms) `name` with `spec` (grammar above). "off" or an
  /// empty spec disarms. Returns InvalidArgument on a malformed spec.
  static Status Set(const std::string& name, const std::string& spec);

  /// Disarms `name` (no-op when not armed).
  static void Clear(const std::string& name);

  /// Disarms everything and zeroes all hit counters.
  static void ClearAll();

  /// Parses `getenv(env_var)` as semicolon-separated name=spec pairs and
  /// arms each. Missing/empty variable is OK (no-op).
  static Status InstallFromEnv(const char* env_var = "RELVIEW_FAILPOINTS");

  /// Registers a hit at site `name` and returns the fault to inject (or
  /// kOff). A `crash` action exits the process here. `name` must be a
  /// literal or otherwise outlive the call.
  static FailpointHit Check(const char* name);

  /// Total hits observed at `name` since ClearAll (armed or not: counting
  /// starts at arming time; an unarmed site is not counted — the fast
  /// path never takes the lock).
  static uint64_t Hits(const std::string& name);

  /// Names of currently armed failpoints (for diagnostics / telemetry).
  static std::vector<std::string> Armed();
};

}  // namespace relview

#endif  // RELVIEW_UTIL_FAILPOINT_H_
