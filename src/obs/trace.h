// Structured span tracing for the relview hot paths.
//
// Design constraints (gated by bench_translatability experiment 3: ≤ 5%
// overhead on the mixed update stream with sampling 1/64):
//
//  * Disabled cost is one relaxed atomic load + branch per span site —
//    tracing is compiled in everywhere and switched at runtime.
//  * Head-based sampling: the keep/drop decision is made once per *root*
//    span (depth 0 on the thread) with a thread-local counter, so a kept
//    trace is always complete — child spans inherit the decision and
//    nested timings stay mutually consistent.
//  * Span completion goes to a fixed-capacity lock-free MPSC ring
//    (TraceRing). Producers never block and never wait for each other:
//    each claims a ticket with one fetch_add and publishes through a
//    per-slot seqlock. Overflow drops the *oldest* records (the ring laps)
//    and a reader that observes a slot mid-write simply skips it, so
//    concurrent dumps never see torn records (tests hold this under TSan).
//  * Clocks are monotonic (steady_clock) relative to the tracer's birth.
//
// Exporters: Chrome trace_event JSON ("catapult" / chrome://tracing /
// Perfetto compatible) and a flat text log, both rendered from a
// consistent snapshot of the ring.
//
// Usage:
//   RELVIEW_TRACE_SPAN("engine.condition_c");           // scope = span
//   RELVIEW_TRACE_SPAN_N(span, "svc.stage");            // named handle
//   span.AddArg("probes", n);                           // u64 args
//
// All names must be string literals (or otherwise outlive the tracer):
// the ring stores pointers, not copies.

#ifndef RELVIEW_OBS_TRACE_H_
#define RELVIEW_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "obs/trace_context.h"

namespace relview {

/// One completed span as read back out of the ring.
struct TraceEvent {
  const char* name = "";
  int64_t start_ns = 0;  // monotonic, relative to the tracer's birth
  int64_t dur_ns = 0;
  uint32_t tid = 0;   // small dense thread id assigned on first span
  uint32_t depth = 0;  // nesting depth at emission (root = 0)
  // Request identity (obs/trace_context.h); all-zero when the span ran
  // with no installed context (library-internal spans, shell commands).
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  uint64_t parent_span_id = 0;
  static constexpr int kMaxArgs = 2;
  const char* arg_name[kMaxArgs] = {nullptr, nullptr};
  uint64_t arg_value[kMaxArgs] = {0, 0};
  int num_args = 0;
};

/// Fixed-capacity lock-free MPSC ring of TraceEvents. Writers claim a
/// ticket (one fetch_add) and publish via a per-slot seqlock; readers
/// snapshot without blocking writers and skip any slot observed mid-write.
/// Overflow overwrites the oldest slot (drop-oldest). Capacity is rounded
/// up to a power of two.
///
/// Deliberately unannotated for clang's thread-safety analysis
/// (util/annotations.h): a per-slot seqlock is not a capability the
/// analysis can model. Correctness is held by the acquire/release
/// protocol on `seq` below and verified dynamically — obs_trace_test
/// runs under TSan in CI.
class TraceRing {
 public:
  explicit TraceRing(size_t capacity);

  size_t capacity() const { return slots_.size(); }
  /// Total records ever pushed (accepted + dropped).
  uint64_t pushed() const { return head_.load(std::memory_order_relaxed); }
  /// Records lost to ring lapping (oldest overwritten).
  uint64_t dropped_oldest() const;
  /// Records abandoned because another writer held the same slot (only
  /// possible when producers outpace the ring by a full lap mid-write).
  uint64_t dropped_collisions() const {
    return collisions_.load(std::memory_order_relaxed);
  }

  void Push(const TraceEvent& ev);

  /// Consistent copy of every currently readable record, oldest first.
  /// Never blocks writers; records being written during the snapshot are
  /// skipped, not torn.
  std::vector<TraceEvent> Snapshot() const;

  void Clear();

 private:
  // Per-slot seqlock. seq == kBusy while a writer owns the slot; otherwise
  // seq == 2*ticket + 2 marks a published record for that ticket (0 =
  // never written). All payload fields are relaxed atomics so concurrent
  // read-during-write is well-defined (the seq recheck discards it).
  struct alignas(64) Slot {
    std::atomic<uint64_t> seq{0};
    std::atomic<uintptr_t> name{0};
    std::atomic<int64_t> start_ns{0};
    std::atomic<int64_t> dur_ns{0};
    std::atomic<uint32_t> tid{0};
    std::atomic<uint32_t> depth{0};
    std::atomic<uint64_t> trace_id{0};
    std::atomic<uint64_t> span_id{0};
    std::atomic<uint64_t> parent_span_id{0};
    std::atomic<uintptr_t> arg_name[TraceEvent::kMaxArgs] = {};
    std::atomic<uint64_t> arg_value[TraceEvent::kMaxArgs] = {};
  };
  static constexpr uint64_t kBusy = 1;

  std::vector<Slot> slots_;
  size_t mask_ = 0;
  std::atomic<uint64_t> head_{0};
  std::atomic<uint64_t> collisions_{0};
};

struct TracerStats {
  uint64_t spans_started = 0;    // sites reached while enabled
  uint64_t spans_recorded = 0;   // pushed to the ring
  uint64_t spans_sampled_out = 0;
  uint64_t dropped_oldest = 0;   // ring laps
  uint64_t dropped_collisions = 0;
  uint64_t records_buffered = 0;  // currently readable
};

/// The span tracer. Thread-safe throughout; one process-global instance
/// (GlobalTracer) serves the library's trace sites, but tests may own
/// private instances.
class Tracer {
 public:
  static constexpr size_t kDefaultCapacity = 1 << 14;  // 16384 spans

  explicit Tracer(size_t ring_capacity = kDefaultCapacity);

  /// Turns tracing on, keeping 1 in `sample_every` root spans (and every
  /// child of a kept root). sample_every < 1 is treated as 1.
  void Enable(uint32_t sample_every = 1);
  void Disable();
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  uint32_t sample_every() const {
    return sample_every_.load(std::memory_order_relaxed);
  }

  TracerStats stats() const;
  std::vector<TraceEvent> Snapshot() const { return ring_.Snapshot(); }
  void Clear() { ring_.Clear(); }

  /// Chrome trace_event JSON: {"traceEvents":[{"ph":"X",...},...]}.
  /// Loadable in chrome://tracing and Perfetto.
  std::string ExportChromeTrace() const;
  /// One line per span: "start_us dur_us tid depth name k=v ...".
  std::string ExportText() const;

  /// One head-sampling decision drawn from the calling thread's counter,
  /// without opening a span. The network edge uses this to decide a
  /// request's fate once, then pins it into the TraceContext so every
  /// span under the request — on any depth — follows it.
  bool HeadSample();

  // -- Span internals (used by the Span RAII class) ------------------------
  /// How BeginSpan resolves the sampling decision. kAuto is the legacy
  /// per-thread-counter behavior for spans with no installed TraceContext;
  /// kForce / kSuppress carry an edge decision (adopted header, HeadSample)
  /// into the tree regardless of depth.
  enum class SampleOverride { kAuto, kForce, kSuppress };

  /// Registers a span start on this thread; returns whether the span is
  /// being recorded (sampling decision at depth 0, inherited below,
  /// unless overridden by an edge decision).
  bool BeginSpan(SampleOverride override_mode = SampleOverride::kAuto);
  /// Closes the innermost span; records `ev` when the trace is kept.
  void EndSpan(TraceEvent* ev);
  int64_t NowNanos() const;

 private:
  struct ThreadState {
    uint64_t sample_counter = 0;
    uint32_t depth = 0;
    bool sampled = false;
    uint32_t tid = 0;
    bool tid_assigned = false;
  };
  ThreadState& Tls();

  TraceRing ring_;
  std::atomic<bool> enabled_{false};
  std::atomic<uint32_t> sample_every_{1};
  std::atomic<uint64_t> spans_started_{0};
  std::atomic<uint64_t> spans_recorded_{0};
  std::atomic<uint64_t> spans_sampled_out_{0};
  std::atomic<uint32_t> next_tid_{1};
  const int64_t epoch_ns_;
};

/// The process-wide tracer used by the library's trace sites.
Tracer& GlobalTracer();

/// RAII span handle. Constructing against a disabled tracer costs one
/// relaxed load + branch and leaves the handle inert.
///
/// When the calling thread carries a TraceContext (a request is in
/// flight), the span adopts its trace id, parents itself under the
/// innermost active span, and installs itself as the new parent for the
/// scope's duration — so the request's edge decision, not the thread's
/// sampling counter, decides recording, and the exported events link into
/// one tree per request.
class Span {
 public:
  Span(Tracer& tracer, const char* name) {
    if (!tracer.enabled()) return;
    tracer_ = &tracer;
    live_ = true;
    const TraceContext& ctx = CurrentTraceContext();
    Tracer::SampleOverride mode = Tracer::SampleOverride::kAuto;
    if (ctx.valid()) {
      mode = ctx.sampled ? Tracer::SampleOverride::kForce
                         : Tracer::SampleOverride::kSuppress;
    }
    recording_ = tracer.BeginSpan(mode);
    ev_.name = name;
    if (recording_) {
      ev_.start_ns = tracer.NowNanos();
      if (ctx.valid()) {
        ev_.trace_id = ctx.trace_id;
        ev_.parent_span_id = ctx.span_id;
        ev_.span_id = NewSpanId();
        saved_ctx_ = ctx;
        restore_ctx_ = true;
        TraceContext inner = ctx;
        inner.span_id = ev_.span_id;
        SetCurrentTraceContext(inner);
      }
    }
  }
  ~Span() { Finish(); }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Attaches a numeric argument (first kMaxArgs stick; extras dropped).
  /// `name` must be a string literal.
  void AddArg(const char* name, uint64_t value) {
    if (!recording_ || ev_.num_args >= TraceEvent::kMaxArgs) return;
    ev_.arg_name[ev_.num_args] = name;
    ev_.arg_value[ev_.num_args] = value;
    ++ev_.num_args;
  }

  /// Early close (idempotent; the destructor is then a no-op).
  void Finish() {
    if (!live_) return;
    live_ = false;
    if (recording_) ev_.dur_ns = tracer_->NowNanos() - ev_.start_ns;
    tracer_->EndSpan(recording_ ? &ev_ : nullptr);
    if (restore_ctx_) {
      restore_ctx_ = false;
      SetCurrentTraceContext(saved_ctx_);
    }
  }

  bool recording() const { return recording_; }
  /// This span's id while recording under a context (0 otherwise).
  uint64_t span_id() const { return ev_.span_id; }

 private:
  Tracer* tracer_ = nullptr;
  bool live_ = false;
  bool recording_ = false;
  bool restore_ctx_ = false;
  TraceEvent ev_;
  TraceContext saved_ctx_;
};

#define RELVIEW_OBS_CONCAT_IMPL(a, b) a##b
#define RELVIEW_OBS_CONCAT(a, b) RELVIEW_OBS_CONCAT_IMPL(a, b)

/// Anonymous scope span against the global tracer.
#define RELVIEW_TRACE_SPAN(name)                       \
  ::relview::Span RELVIEW_OBS_CONCAT(_relview_span_,   \
                                     __LINE__)(        \
      ::relview::GlobalTracer(), (name))

/// Named scope span (for AddArg / early Finish).
#define RELVIEW_TRACE_SPAN_N(var, name) \
  ::relview::Span var(::relview::GlobalTracer(), (name))

}  // namespace relview

#endif  // RELVIEW_OBS_TRACE_H_
