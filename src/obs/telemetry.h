// TelemetryRegistry: one place to read everything the process knows about
// itself. Components register collectors (Prometheus-style metric
// families) and JSON section providers; the registry renders a combined
// text exposition (`RenderPrometheus`) and a combined JSON document
// (`RenderJson`, one top-level key per registered section — the service's
// existing JSON dump plugs in unchanged).
//
// The registry is generic: it knows nothing about ServiceMetrics or
// EngineStats. The service layer registers adapters (see
// update_service.h's RegisterTelemetry) so the dependency arrow keeps
// pointing from service/ down into obs/.

#ifndef RELVIEW_OBS_TELEMETRY_H_
#define RELVIEW_OBS_TELEMETRY_H_

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "obs/histogram.h"
#include "obs/trace.h"
#include "util/annotations.h"

namespace relview {

/// One sample of a metric: optional label set ("{kind=\"insert\"}",
/// already formatted, possibly empty) plus a value, plus an optional
/// exemplar suffix (OpenMetrics syntax, e.g. "{trace_id=\"<16hex>\"} 0.8")
/// rendered after the value so a latency series can point at a concrete
/// recorded trace.
struct MetricSample {
  MetricSample() = default;
  // Two- and three-field forms, so the many existing `{labels, value}`
  // brace inits stay valid without tripping -Wmissing-field-initializers.
  MetricSample(std::string labels_in, double value_in,
               std::string exemplar_in = std::string())
      : labels(std::move(labels_in)),
        value(value_in),
        exemplar(std::move(exemplar_in)) {}

  std::string labels;
  double value = 0;
  std::string exemplar;
};

/// A named group of samples sharing HELP/TYPE metadata.
struct MetricFamily {
  std::string name;  // sanitized to [a-zA-Z0-9_:] on render
  std::string help;
  std::string type;  // "counter" | "gauge" | "summary"
  std::vector<MetricSample> samples;
};

/// Convenience constructors.
MetricFamily CounterFamily(std::string name, std::string help, double value);
MetricFamily GaugeFamily(std::string name, std::string help, double value);
/// Renders a LatencyHistogram as a Prometheus summary (quantile samples
/// plus implicit <name>_count / <name>_sum series, in seconds).
MetricFamily SummaryFamily(std::string name, std::string help,
                           const LatencyHistogram& h);
/// Formats one label pair into the MetricSample::labels syntax.
std::string Label(const std::string& key, const std::string& value);

using TelemetryCollector = std::function<std::vector<MetricFamily>()>;
using JsonProvider = std::function<std::string()>;

class TelemetryRegistry {
 public:
  /// Registers (or replaces) a named collector of metric families.
  void Register(const std::string& name, TelemetryCollector collector)
      RELVIEW_EXCLUDES(mu_);
  /// Registers (or replaces) a named JSON section; `provider` must return
  /// a complete JSON value (the service metrics dump, tracer stats, ...).
  void RegisterJson(const std::string& name, JsonProvider provider)
      RELVIEW_EXCLUDES(mu_);
  void Unregister(const std::string& name) RELVIEW_EXCLUDES(mu_);

  /// Prometheus text exposition format 0.0.4: HELP/TYPE comments followed
  /// by the samples of every registered collector, in registration order.
  /// Collectors run *outside* mu_ (on a copy of the registration list), so
  /// a collector may re-enter the registry without deadlocking.
  std::string RenderPrometheus() const RELVIEW_EXCLUDES(mu_);
  /// {"<section>":<value>,...} in registration order.
  std::string RenderJson() const RELVIEW_EXCLUDES(mu_);

 private:
  mutable Mutex mu_;
  std::vector<std::pair<std::string, TelemetryCollector>> collectors_
      RELVIEW_GUARDED_BY(mu_);
  std::vector<std::pair<std::string, JsonProvider>> json_sections_
      RELVIEW_GUARDED_BY(mu_);
};

/// Process-wide registry; the service registers into it on construction.
TelemetryRegistry& GlobalTelemetry();

/// Metric families / JSON for a tracer's own counters (spans started,
/// recorded, sampled out, drops). Register under e.g. "tracer".
std::vector<MetricFamily> CollectTracerStats(const Tracer& tracer);
std::string TracerStatsJson(const Tracer& tracer);

}  // namespace relview

#endif  // RELVIEW_OBS_TELEMETRY_H_
