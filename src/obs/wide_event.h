// Wide events: one structured, self-contained log line per request.
//
// Instead of scattering a request's story across interleaved debug logs,
// the net layer assembles everything it learned — tenant, admission
// verdict, shard fan-out, per-stage durations, commit-cohort size, final
// status, trace id — into a single WideEvent and emits it once, at the
// end of the request (the "canonical log line" pattern). Each line is one
// JSON object, so the log is greppable by trace id and machine-parseable
// without a schema registry.
//
// Emission is sampled (1 in N requests) to bound volume, but callers can
// force an individual event through the sampler — the server forces
// failures (HTTP 5xx) and the group-commit stall watchdog forces its
// stall report, so the interesting lines are never the ones sampled away.
//
// The sink is process-global (GlobalWideEvents()) for the same reason the
// tracer is: the service layer must be able to emit (the stall watchdog
// lives in UpdateService::AwaitDurable) without the net layer threading a
// sink handle through every constructor.

#ifndef RELVIEW_OBS_WIDE_EVENT_H_
#define RELVIEW_OBS_WIDE_EVENT_H_

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <string>

#include "util/annotations.h"
#include "util/status.h"

namespace relview {

/// Everything known about one request (or one watchdog firing), flattened.
/// Fields that do not apply to a given event kind keep their zero values
/// and still render, so every line has the same shape.
struct WideEvent {
  const char* kind = "request";  ///< "request" | "commit_stall".
  std::string tenant;
  uint64_t trace_id = 0;
  int http_status = 0;
  /// Admission verdict: "admitted", "shed", "deadline", "draining",
  /// "parse_error", "unknown_tenant".
  const char* admission = "";
  int batch_size = 0;
  uint64_t shard_mask = 0;  ///< Bit i set = shard i touched (first 64).
  int shards_touched = 0;
  uint64_t cohort_batches = 0;  ///< Commit-cohort size observed (0 = none).
  bool led_cohort = false;      ///< This request's thread ran the fsync.
  int64_t stage_nanos = 0;      ///< Translatability checks + staging.
  int64_t append_nanos = 0;     ///< Journal append (unsynced).
  int64_t commit_wait_nanos = 0;  ///< Waiting for / running the cohort fsync.
  int64_t total_nanos = 0;        ///< Whole request, socket to socket.
  int straggler_shard = -1;       ///< Slowest shard in the fan-out.
  int64_t straggler_nanos = 0;
  std::string detail;  ///< Status message / stall description.
};

/// Sampling sink writing one JSON line per emitted event. Thread-safe;
/// disabled (and free) until Configure/OpenFile installs an output.
class WideEventSink {
 public:
  WideEventSink() = default;
  ~WideEventSink();
  WideEventSink(const WideEventSink&) = delete;
  WideEventSink& operator=(const WideEventSink&) = delete;

  /// Emits 1 in `sample_every` events to `out` (borrowed; caller keeps it
  /// open past the sink's last Emit). sample_every < 1 disables the sink.
  void Configure(std::FILE* out, uint32_t sample_every);

  /// Like Configure but opens (and owns) `path` in append mode.
  Status OpenFile(const std::string& path, uint32_t sample_every);

  /// Closes/forgets the output; the sink reverts to disabled.
  void Reset();

  bool enabled() const {
    return sample_every_.load(std::memory_order_relaxed) > 0;
  }

  /// Writes `ev` as one JSON line if the sampler keeps it (or `forced`).
  /// A disabled sink drops everything, forced or not.
  void Emit(const WideEvent& ev, bool forced = false);

  uint64_t emitted() const {
    return emitted_.load(std::memory_order_relaxed);
  }
  uint64_t sampled_out() const {
    return sampled_out_.load(std::memory_order_relaxed);
  }

  /// The rendered JSON line (no trailing newline). Exposed so the schema
  /// test pins the exact key set without filesystem plumbing.
  static std::string Format(const WideEvent& ev, bool forced);

 private:
  mutable Mutex mu_;
  std::FILE* out_ RELVIEW_GUARDED_BY(mu_) = nullptr;
  bool owns_out_ RELVIEW_GUARDED_BY(mu_) = false;
  std::atomic<uint32_t> sample_every_{0};
  std::atomic<uint64_t> counter_{0};
  std::atomic<uint64_t> emitted_{0};
  std::atomic<uint64_t> sampled_out_{0};
};

/// The process-wide sink used by the server and the stall watchdog.
WideEventSink& GlobalWideEvents();

}  // namespace relview

#endif  // RELVIEW_OBS_WIDE_EVENT_H_
