#include "obs/trace.h"

#include <chrono>
#include <cstdio>
#include <unordered_map>

namespace relview {

namespace {

size_t RoundUpPow2(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

int64_t SteadyNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

// ---------------------------------------------------------------------------
// TraceRing

TraceRing::TraceRing(size_t capacity)
    : slots_(RoundUpPow2(capacity < 2 ? 2 : capacity)) {
  mask_ = slots_.size() - 1;
}

uint64_t TraceRing::dropped_oldest() const {
  const uint64_t pushed = head_.load(std::memory_order_relaxed);
  return pushed > slots_.size() ? pushed - slots_.size() : 0;
}

void TraceRing::Push(const TraceEvent& ev) {
  const uint64_t ticket = head_.fetch_add(1, std::memory_order_relaxed);
  Slot& s = slots_[ticket & mask_];
  // Claim the slot. A failed claim means another writer is lapping us a
  // full ring ahead mid-write; losing one record there keeps every other
  // record untorn, which is the property the readers rely on.
  uint64_t expect = s.seq.load(std::memory_order_relaxed);
  if (expect == kBusy ||
      !s.seq.compare_exchange_strong(expect, kBusy,
                                     std::memory_order_acq_rel)) {
    collisions_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  s.name.store(reinterpret_cast<uintptr_t>(ev.name),
               std::memory_order_relaxed);
  s.start_ns.store(ev.start_ns, std::memory_order_relaxed);
  s.dur_ns.store(ev.dur_ns, std::memory_order_relaxed);
  s.tid.store(ev.tid, std::memory_order_relaxed);
  s.depth.store(ev.depth, std::memory_order_relaxed);
  s.trace_id.store(ev.trace_id, std::memory_order_relaxed);
  s.span_id.store(ev.span_id, std::memory_order_relaxed);
  s.parent_span_id.store(ev.parent_span_id, std::memory_order_relaxed);
  for (int a = 0; a < TraceEvent::kMaxArgs; ++a) {
    const bool present = a < ev.num_args;
    s.arg_name[a].store(
        present ? reinterpret_cast<uintptr_t>(ev.arg_name[a]) : 0,
        std::memory_order_relaxed);
    s.arg_value[a].store(present ? ev.arg_value[a] : 0,
                         std::memory_order_relaxed);
  }
  s.seq.store(2 * ticket + 2, std::memory_order_release);
}

std::vector<TraceEvent> TraceRing::Snapshot() const {
  const uint64_t head = head_.load(std::memory_order_acquire);
  const uint64_t cap = slots_.size();
  const uint64_t first = head > cap ? head - cap : 0;
  std::vector<TraceEvent> out;
  out.reserve(static_cast<size_t>(head - first));
  for (uint64_t ticket = first; ticket < head; ++ticket) {
    const Slot& s = slots_[ticket & mask_];
    const uint64_t want = 2 * ticket + 2;
    const uint64_t s1 = s.seq.load(std::memory_order_acquire);
    if (s1 != want) continue;  // lapped, busy, or never written
    TraceEvent ev;
    ev.name = reinterpret_cast<const char*>(
        s.name.load(std::memory_order_relaxed));
    ev.start_ns = s.start_ns.load(std::memory_order_relaxed);
    ev.dur_ns = s.dur_ns.load(std::memory_order_relaxed);
    ev.tid = s.tid.load(std::memory_order_relaxed);
    ev.depth = s.depth.load(std::memory_order_relaxed);
    ev.trace_id = s.trace_id.load(std::memory_order_relaxed);
    ev.span_id = s.span_id.load(std::memory_order_relaxed);
    ev.parent_span_id = s.parent_span_id.load(std::memory_order_relaxed);
    ev.num_args = 0;
    for (int a = 0; a < TraceEvent::kMaxArgs; ++a) {
      const uintptr_t n = s.arg_name[a].load(std::memory_order_relaxed);
      if (n == 0) break;
      ev.arg_name[a] = reinterpret_cast<const char*>(n);
      ev.arg_value[a] = s.arg_value[a].load(std::memory_order_relaxed);
      ++ev.num_args;
    }
    // Seqlock recheck: discard if a writer touched the slot meanwhile.
    std::atomic_thread_fence(std::memory_order_acquire);
    if (s.seq.load(std::memory_order_relaxed) != s1) continue;
    out.push_back(ev);
  }
  return out;
}

void TraceRing::Clear() {
  // Intended for quiescent moments (between experiments / shell commands);
  // concurrent pushes may survive the sweep but records stay untorn.
  head_.store(0, std::memory_order_relaxed);
  collisions_.store(0, std::memory_order_relaxed);
  for (Slot& s : slots_) s.seq.store(0, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Tracer

Tracer::Tracer(size_t ring_capacity)
    : ring_(ring_capacity), epoch_ns_(SteadyNowNs()) {}

void Tracer::Enable(uint32_t sample_every) {
  sample_every_.store(sample_every < 1 ? 1 : sample_every,
                      std::memory_order_relaxed);
  enabled_.store(true, std::memory_order_relaxed);
}

void Tracer::Disable() { enabled_.store(false, std::memory_order_relaxed); }

int64_t Tracer::NowNanos() const { return SteadyNowNs() - epoch_ns_; }

Tracer::ThreadState& Tracer::Tls() {
  // Per-(thread, tracer) state, with a one-entry cache so the common case
  // (one tracer per thread) is a pointer compare.
  struct Cache {
    const Tracer* tracer = nullptr;
    ThreadState* state = nullptr;
  };
  static thread_local Cache cache;
  static thread_local std::unordered_map<const Tracer*, ThreadState> states;
  if (cache.tracer == this) return *cache.state;
  ThreadState& st = states[this];
  cache = {this, &st};
  return st;
}

bool Tracer::HeadSample() {
  if (!enabled()) return false;
  ThreadState& ts = Tls();
  const uint32_t every = sample_every_.load(std::memory_order_relaxed);
  return (ts.sample_counter++ % every) == 0;
}

bool Tracer::BeginSpan(SampleOverride override_mode) {
  ThreadState& ts = Tls();
  if (override_mode != SampleOverride::kAuto) {
    // Edge decision (TraceContext) dominates at every depth, so adopted
    // traces record even when this thread's counter would have skipped,
    // and unsampled requests stay free mid-tree.
    ts.sampled = override_mode == SampleOverride::kForce;
  } else if (ts.depth == 0) {
    const uint32_t every = sample_every_.load(std::memory_order_relaxed);
    ts.sampled = (ts.sample_counter++ % every) == 0;
  }
  ++ts.depth;
  spans_started_.fetch_add(1, std::memory_order_relaxed);
  if (!ts.sampled) {
    spans_sampled_out_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  if (!ts.tid_assigned) {
    ts.tid = next_tid_.fetch_add(1, std::memory_order_relaxed);
    ts.tid_assigned = true;
  }
  return true;
}

void Tracer::EndSpan(TraceEvent* ev) {
  ThreadState& ts = Tls();
  if (ts.depth > 0) --ts.depth;
  if (ev == nullptr) return;
  ev->tid = ts.tid;
  ev->depth = ts.depth;
  ring_.Push(*ev);
  spans_recorded_.fetch_add(1, std::memory_order_relaxed);
}

TracerStats Tracer::stats() const {
  TracerStats s;
  s.spans_started = spans_started_.load(std::memory_order_relaxed);
  s.spans_recorded = spans_recorded_.load(std::memory_order_relaxed);
  s.spans_sampled_out = spans_sampled_out_.load(std::memory_order_relaxed);
  s.dropped_oldest = ring_.dropped_oldest();
  s.dropped_collisions = ring_.dropped_collisions();
  s.records_buffered =
      s.spans_recorded > s.dropped_oldest + s.dropped_collisions
          ? s.spans_recorded - s.dropped_oldest - s.dropped_collisions
          : 0;
  return s;
}

namespace {

void AppendJsonEscaped(const char* s, std::string* out) {
  for (; s != nullptr && *s != '\0'; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\') {
      out->push_back('\\');
      out->push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      *out += buf;
    } else {
      out->push_back(c);
    }
  }
}

}  // namespace

std::string Tracer::ExportChromeTrace() const {
  const std::vector<TraceEvent> events = Snapshot();
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  char buf[160];
  for (const TraceEvent& ev : events) {
    if (!first) out += ",";
    first = false;
    out += "{\"name\":\"";
    AppendJsonEscaped(ev.name, &out);
    std::snprintf(buf, sizeof(buf),
                  "\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,\"pid\":1,"
                  "\"tid\":%u,\"args\":{\"depth\":%u",
                  static_cast<double>(ev.start_ns) / 1000.0,
                  static_cast<double>(ev.dur_ns) / 1000.0, ev.tid, ev.depth);
    out += buf;
    if (ev.trace_id != 0) {
      out += ",\"trace\":\"" + TraceIdHex(ev.trace_id) + "\"";
      out += ",\"span\":\"" + TraceIdHex(ev.span_id) + "\"";
      if (ev.parent_span_id != 0) {
        out += ",\"parent\":\"" + TraceIdHex(ev.parent_span_id) + "\"";
      }
    }
    for (int a = 0; a < ev.num_args; ++a) {
      out += ",\"";
      AppendJsonEscaped(ev.arg_name[a], &out);
      std::snprintf(buf, sizeof(buf), "\":%llu",
                    static_cast<unsigned long long>(ev.arg_value[a]));
      out += buf;
    }
    out += "}}";
  }
  out += "],\"displayTimeUnit\":\"ns\"}";
  return out;
}

std::string Tracer::ExportText() const {
  const std::vector<TraceEvent> events = Snapshot();
  std::string out;
  char buf[128];
  for (const TraceEvent& ev : events) {
    std::snprintf(buf, sizeof(buf), "%12.3f %10.3f  tid=%-3u %*s",
                  static_cast<double>(ev.start_ns) / 1000.0,
                  static_cast<double>(ev.dur_ns) / 1000.0, ev.tid,
                  static_cast<int>(ev.depth) * 2, "");
    out += buf;
    out += ev.name != nullptr ? ev.name : "?";
    for (int a = 0; a < ev.num_args; ++a) {
      std::snprintf(buf, sizeof(buf), " %s=%llu", ev.arg_name[a],
                    static_cast<unsigned long long>(ev.arg_value[a]));
      out += buf;
    }
    if (ev.trace_id != 0) out += " trace=" + TraceIdHex(ev.trace_id);
    out += "\n";
  }
  return out;
}

Tracer& GlobalTracer() {
  static Tracer* tracer = new Tracer();  // leaked: outlives all spans
  return *tracer;
}

}  // namespace relview
