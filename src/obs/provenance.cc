#include "obs/provenance.h"

#include <cstdio>

namespace relview {
namespace {

const char* KindName(char kind) {
  switch (kind) {
    case 'I': return "insert";
    case 'D': return "delete";
    case 'R': return "replace";
    default: return "unknown";
  }
}

const char* ConditionText(char c) {
  switch (c) {
    case 'a': return "(a) complement membership: t[X∩Y] not in pi_{X∩Y}(V)";
    case 'b': return "(b) key structure of X∩Y under Sigma";
    case 'c': return "(c) chase counterexample";
    default: return "none";
  }
}

void AppendJsonEscaped(const std::string& s, std::string* out) {
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out->push_back('\\');
      out->push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      *out += buf;
    } else {
      out->push_back(c);
    }
  }
}

}  // namespace

std::string DecisionTrace::ToString(const Universe* u) const {
  char buf[256];
  std::string out;
  std::snprintf(buf, sizeof(buf), "decision #%llu: %s %s -> %s\n",
                static_cast<unsigned long long>(sequence), KindName(kind),
                update.c_str(), accepted ? "ACCEPTED" : "REJECTED");
  out += buf;
  if (!accepted) {
    out += "  failed condition: ";
    out += ConditionText(failed_condition);
    out += "\n  verdict: " + verdict + "\n";
    if (has_violated_fd) {
      out += "  violated FD: " + violated_fd.ToString(u) + "\n";
    }
    if (has_violator) {
      std::snprintf(buf, sizeof(buf), "  violator row: V[%d] = %s\n",
                    violator_row, violator_tuple.ToString().c_str());
      out += buf;
    }
    if (has_mu) {
      out += "  mu row: " + mu_tuple.ToString() + "\n";
    }
  }
  std::snprintf(buf, sizeof(buf),
                "  chase: %d chases, %lld merges, %lld rounds, %lld work; "
                "probes %lld run / %lld screened / %lld parallel\n",
                chases_run, static_cast<long long>(chase_merges),
                static_cast<long long>(chase_rounds),
                static_cast<long long>(chase_work),
                static_cast<long long>(probes_run),
                static_cast<long long>(probes_screened),
                static_cast<long long>(probes_parallel));
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "  engine: closure %lld hit / %lld miss; index %lld reuse / "
                "%lld rebuild; base %lld reuse / %lld rebuild / %lld extend "
                "/ %lld shrink; %lld component rows rechased\n",
                static_cast<long long>(closure_hits),
                static_cast<long long>(closure_misses),
                static_cast<long long>(index_reuses),
                static_cast<long long>(index_rebuilds),
                static_cast<long long>(base_reuses),
                static_cast<long long>(base_rebuilds),
                static_cast<long long>(base_extends),
                static_cast<long long>(base_shrinks),
                static_cast<long long>(component_rows_rechased));
  out += buf;
  std::snprintf(buf, sizeof(buf), "  timing: check %lld ns, apply %lld ns",
                static_cast<long long>(check_nanos),
                static_cast<long long>(apply_nanos));
  out += buf;
  if (batch_index >= 0) {
    std::snprintf(buf, sizeof(buf), "; batch index %d", batch_index);
    out += buf;
  }
  out += "\n";
  return out;
}

std::string DecisionTrace::ToJson(const Universe* u) const {
  char buf[512];
  std::string out = "{";
  std::snprintf(buf, sizeof(buf),
                "\"sequence\":%llu,\"kind\":\"%s\",\"accepted\":%s,"
                "\"failed_condition\":\"%c\",",
                static_cast<unsigned long long>(sequence), KindName(kind),
                accepted ? "true" : "false",
                failed_condition == '\0' ? '-' : failed_condition);
  out += buf;
  out += "\"verdict\":\"";
  AppendJsonEscaped(verdict, &out);
  out += "\",\"update\":\"";
  AppendJsonEscaped(update, &out);
  out += "\"";
  if (has_violated_fd) {
    out += ",\"violated_fd\":\"";
    AppendJsonEscaped(violated_fd.ToString(u), &out);
    out += "\"";
  }
  if (has_violator) {
    std::snprintf(buf, sizeof(buf), ",\"violator_row\":%d,", violator_row);
    out += buf;
    out += "\"violator_tuple\":\"";
    AppendJsonEscaped(violator_tuple.ToString(), &out);
    out += "\"";
  }
  if (has_mu) {
    out += ",\"mu_tuple\":\"";
    AppendJsonEscaped(mu_tuple.ToString(), &out);
    out += "\"";
  }
  std::snprintf(
      buf, sizeof(buf),
      ",\"chases_run\":%d,\"chase_merges\":%lld,\"chase_rounds\":%lld,"
      "\"chase_work\":%lld,\"probes_run\":%lld,\"probes_screened\":%lld,"
      "\"probes_parallel\":%lld,\"closure_hits\":%lld,"
      "\"closure_misses\":%lld,\"index_reuses\":%lld,"
      "\"index_rebuilds\":%lld,\"base_reuses\":%lld,\"base_rebuilds\":%lld,"
      "\"base_extends\":%lld,\"base_shrinks\":%lld,"
      "\"component_rows_rechased\":%lld,\"check_nanos\":%lld,"
      "\"apply_nanos\":%lld,\"batch_index\":%d}",
      chases_run, static_cast<long long>(chase_merges),
      static_cast<long long>(chase_rounds),
      static_cast<long long>(chase_work),
      static_cast<long long>(probes_run),
      static_cast<long long>(probes_screened),
      static_cast<long long>(probes_parallel),
      static_cast<long long>(closure_hits),
      static_cast<long long>(closure_misses),
      static_cast<long long>(index_reuses),
      static_cast<long long>(index_rebuilds),
      static_cast<long long>(base_reuses),
      static_cast<long long>(base_rebuilds),
      static_cast<long long>(base_extends),
      static_cast<long long>(base_shrinks),
      static_cast<long long>(component_rows_rechased),
      static_cast<long long>(check_nanos),
      static_cast<long long>(apply_nanos), batch_index);
  out += buf;
  return out;
}

DecisionLog::DecisionLog(size_t capacity)
    : capacity_(capacity < 1 ? 1 : capacity) {}

uint64_t DecisionLog::Push(DecisionTrace t) {
  MutexLock lock(mu_);
  t.sequence = next_sequence_++;
  const uint64_t seq = t.sequence;
  traces_.push_back(std::move(t));
  while (traces_.size() > capacity_) traces_.pop_front();
  return seq;
}

std::vector<DecisionTrace> DecisionLog::Snapshot() const {
  MutexLock lock(mu_);
  return std::vector<DecisionTrace>(traces_.begin(), traces_.end());
}

std::optional<DecisionTrace> DecisionLog::Last() const {
  MutexLock lock(mu_);
  if (traces_.empty()) return std::nullopt;
  return traces_.back();
}

std::optional<DecisionTrace> DecisionLog::LastRejected() const {
  MutexLock lock(mu_);
  for (auto it = traces_.rbegin(); it != traces_.rend(); ++it) {
    if (!it->accepted) return *it;
  }
  return std::nullopt;
}

uint64_t DecisionLog::total() const {
  MutexLock lock(mu_);
  return next_sequence_;
}

}  // namespace relview
