#include "obs/trace_context.h"

#include <chrono>
#include <cstdio>

namespace relview {

namespace {

thread_local TraceContext g_current;

// splitmix64 — tiny, well-mixed, and stateful per thread so concurrent
// threads never contend or collide (each seeds from its own TLS address
// plus the monotonic clock once).
thread_local uint64_t g_id_state = 0;

uint64_t NextId() {
  if (g_id_state == 0) {
    const auto now = std::chrono::steady_clock::now().time_since_epoch();
    g_id_state =
        static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(now).count()) ^
        (reinterpret_cast<uintptr_t>(&g_id_state) << 17) ^ 0x9e3779b97f4a7c15ULL;
  }
  uint64_t z = (g_id_state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  z ^= z >> 31;
  return z != 0 ? z : 1;  // 0 means "no context"; never mint it
}

}  // namespace

const TraceContext& CurrentTraceContext() { return g_current; }

void SetCurrentTraceContext(const TraceContext& ctx) { g_current = ctx; }

uint64_t CurrentSampledTraceId() {
  return g_current.sampled ? g_current.trace_id : 0;
}

ScopedTraceContext::ScopedTraceContext(const TraceContext& ctx)
    : saved_(g_current) {
  g_current = ctx;
}

ScopedTraceContext::~ScopedTraceContext() { g_current = saved_; }

uint64_t NewTraceId() { return NextId(); }
uint64_t NewSpanId() { return NextId(); }

std::string TraceIdHex(uint64_t id) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(id));
  return std::string(buf, 16);
}

bool ParseTraceIdHex(std::string_view hex, uint64_t* id) {
  if (hex.size() != 16) return false;
  uint64_t v = 0;
  for (const char c : hex) {
    uint64_t nib;
    if (c >= '0' && c <= '9') {
      nib = static_cast<uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      nib = static_cast<uint64_t>(c - 'a') + 10;
    } else if (c >= 'A' && c <= 'F') {
      nib = static_cast<uint64_t>(c - 'A') + 10;
    } else {
      return false;
    }
    v = (v << 4) | nib;
  }
  if (v == 0) return false;
  *id = v;
  return true;
}

}  // namespace relview
