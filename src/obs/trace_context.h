// Ambient trace-context propagation for the span tracer (obs/trace.h).
//
// A TraceContext names the request a thread is currently working for:
// a 64-bit trace id (minted at the network edge or adopted from an
// `x-relview-trace` request header), the innermost active span id (the
// parent for any span opened next), and the head sampling decision. The
// context is thread-local and installed/removed RAII-style, so the write
// path — which executes a request on one thread from admission through
// the cohort fsync — propagates it for free, and the sampling decision
// made once at the edge governs every span underneath (kept traces stay
// complete, dropped traces cost nothing).
//
// The context is deliberately tiny and trivially copyable: handing it
// across an explicit thread boundary (none exist on the write path today)
// is a struct copy plus ScopedTraceContext on the far side.

#ifndef RELVIEW_OBS_TRACE_CONTEXT_H_
#define RELVIEW_OBS_TRACE_CONTEXT_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace relview {

/// The per-request identity a thread carries while executing a request.
struct TraceContext {
  uint64_t trace_id = 0;  ///< 0 = no context installed.
  uint64_t span_id = 0;   ///< Innermost active span (parent for new spans).
  bool sampled = false;   ///< Head decision: record spans for this trace?

  bool valid() const { return trace_id != 0; }
};

/// The context installed on the calling thread (a zero context when none).
const TraceContext& CurrentTraceContext();

/// Low-level setter behind ScopedTraceContext and Span; callers that are
/// not RAII guards should prefer ScopedTraceContext so restoration cannot
/// be forgotten on an early return.
void SetCurrentTraceContext(const TraceContext& ctx);

/// The calling thread's trace id if its trace is being recorded, else 0.
/// Use this when attaching exemplars: an unsampled trace id would point at
/// a trace that was never written to the ring.
uint64_t CurrentSampledTraceId();

/// Installs `ctx` on the calling thread for the scope's lifetime and
/// restores the previous context on destruction. Nests LIFO like any RAII
/// guard; Span does this internally for its own span id.
class ScopedTraceContext {
 public:
  explicit ScopedTraceContext(const TraceContext& ctx);
  ~ScopedTraceContext();
  ScopedTraceContext(const ScopedTraceContext&) = delete;
  ScopedTraceContext& operator=(const ScopedTraceContext&) = delete;

 private:
  TraceContext saved_;
};

/// Fresh nonzero 64-bit ids (thread-local splitmix64; no locks, no time
/// syscalls on the fast path after the per-thread seed).
uint64_t NewTraceId();
uint64_t NewSpanId();

/// 16 lowercase hex digits, zero-padded — the wire form used by the
/// `x-relview-trace` header, wide events, and exemplar labels.
std::string TraceIdHex(uint64_t id);

/// Parses the wire form (exactly 16 hex digits, either case). Returns
/// false (and leaves *id alone) on malformed input or the zero id.
bool ParseTraceIdHex(std::string_view hex, uint64_t* id);

}  // namespace relview

#endif  // RELVIEW_OBS_TRACE_CONTEXT_H_
