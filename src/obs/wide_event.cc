#include "obs/wide_event.h"

#include "obs/trace_context.h"

namespace relview {

namespace {

void AppendEscaped(const std::string& s, std::string* out) {
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out->push_back('\\');
      out->push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      *out += buf;
    } else {
      out->push_back(c);
    }
  }
}

void AppendMicros(const char* key, int64_t nanos, std::string* out) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), ",\"%s\":%.3f", key,
                static_cast<double>(nanos) / 1000.0);
  *out += buf;
}

}  // namespace

WideEventSink::~WideEventSink() { Reset(); }

void WideEventSink::Configure(std::FILE* out, uint32_t sample_every) {
  MutexLock lock(mu_);
  if (owns_out_ && out_ != nullptr) std::fclose(out_);
  out_ = out;
  owns_out_ = false;
  sample_every_.store(out == nullptr ? 0 : sample_every,
                      std::memory_order_relaxed);
}

Status WideEventSink::OpenFile(const std::string& path,
                               uint32_t sample_every) {
  std::FILE* f = std::fopen(path.c_str(), "a");
  if (f == nullptr) {
    return Status::InvalidArgument("wide-event log unwritable: " + path);
  }
  MutexLock lock(mu_);
  if (owns_out_ && out_ != nullptr) std::fclose(out_);
  out_ = f;
  owns_out_ = true;
  sample_every_.store(sample_every, std::memory_order_relaxed);
  return Status::OK();
}

void WideEventSink::Reset() {
  MutexLock lock(mu_);
  if (owns_out_ && out_ != nullptr) std::fclose(out_);
  out_ = nullptr;
  owns_out_ = false;
  sample_every_.store(0, std::memory_order_relaxed);
}

void WideEventSink::Emit(const WideEvent& ev, bool forced) {
  const uint32_t every = sample_every_.load(std::memory_order_relaxed);
  if (every == 0) return;
  const uint64_t n = counter_.fetch_add(1, std::memory_order_relaxed);
  if (!forced && (n % every) != 0) {
    sampled_out_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  const std::string line = Format(ev, forced);
  {
    MutexLock lock(mu_);
    if (out_ == nullptr) return;
    std::fwrite(line.data(), 1, line.size(), out_);
    std::fputc('\n', out_);
    std::fflush(out_);
  }
  emitted_.fetch_add(1, std::memory_order_relaxed);
}

std::string WideEventSink::Format(const WideEvent& ev, bool forced) {
  std::string out = "{\"event\":\"";
  out += ev.kind;
  out += "\",\"tenant\":\"";
  AppendEscaped(ev.tenant, &out);
  out += "\",\"trace\":\"";
  out += ev.trace_id != 0 ? TraceIdHex(ev.trace_id) : "";
  out += "\"";
  char buf[96];
  std::snprintf(buf, sizeof(buf), ",\"status\":%d,\"admission\":\"%s\"",
                ev.http_status, ev.admission);
  out += buf;
  std::snprintf(buf, sizeof(buf), ",\"batch_size\":%d", ev.batch_size);
  out += buf;
  out += ",\"shards\":[";
  bool first = true;
  for (int s = 0; s < 64; ++s) {
    if ((ev.shard_mask & (1ULL << s)) == 0) continue;
    if (!first) out += ",";
    first = false;
    std::snprintf(buf, sizeof(buf), "%d", s);
    out += buf;
  }
  out += "]";
  std::snprintf(buf, sizeof(buf),
                ",\"shard_count\":%d,\"cohort_batches\":%llu,"
                "\"led_cohort\":%s",
                ev.shards_touched,
                static_cast<unsigned long long>(ev.cohort_batches),
                ev.led_cohort ? "true" : "false");
  out += buf;
  AppendMicros("stage_us", ev.stage_nanos, &out);
  AppendMicros("append_us", ev.append_nanos, &out);
  AppendMicros("commit_wait_us", ev.commit_wait_nanos, &out);
  AppendMicros("total_us", ev.total_nanos, &out);
  std::snprintf(buf, sizeof(buf), ",\"straggler_shard\":%d",
                ev.straggler_shard);
  out += buf;
  AppendMicros("straggler_us", ev.straggler_nanos, &out);
  out += ",\"detail\":\"";
  AppendEscaped(ev.detail, &out);
  out += forced ? "\",\"forced\":true}" : "\",\"forced\":false}";
  return out;
}

WideEventSink& GlobalWideEvents() {
  static WideEventSink* sink = new WideEventSink();  // leaked: process-wide
  return *sink;
}

}  // namespace relview
