// LatencyHistogram: a lock-free log2-bucketed latency histogram
// (nanoseconds), shared by the service metrics, the journal's fsync
// accounting and the telemetry exposition. Bucket i counts samples with
// latency in [2^i, 2^(i+1)) ns. Quantile estimates report the upper edge
// of the containing bucket, clamped into [min, max] so boundary quantiles
// (q = 0, q = 1, single-sample histograms) are exact observed values
// rather than bucket edges.
//
// Exemplars: each bucket additionally remembers the trace id of the most
// recent sampled request that landed in it (one relaxed atomic store —
// tear-free because the id is a single word). A quantile estimate can
// then be resolved to a concrete recorded trace: "what did a p99 request
// actually do?" becomes one id lookup instead of archaeology.

#ifndef RELVIEW_OBS_HISTOGRAM_H_
#define RELVIEW_OBS_HISTOGRAM_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

namespace relview {

class LatencyHistogram {
 public:
  static constexpr int kBuckets = 40;  // up to ~2^40 ns ≈ 18 minutes

  void Record(int64_t nanos) { RecordTraced(nanos, 0); }

  /// Record plus an exemplar: when trace_id != 0 the containing bucket
  /// remembers it (latest wins). Pass CurrentSampledTraceId() so the
  /// exemplar always names a trace present in the ring.
  void RecordTraced(int64_t nanos, uint64_t trace_id);

  /// Trace id remembered by the bucket containing the q-quantile (the
  /// same bucket QuantileNanos reports from); 0 when the histogram is
  /// empty or no traced sample ever landed there.
  uint64_t ExemplarTrace(double q) const;

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t total_nanos() const {
    return total_nanos_.load(std::memory_order_relaxed);
  }
  uint64_t max_nanos() const {
    return max_nanos_.load(std::memory_order_relaxed);
  }
  /// Smallest recorded sample; 0 while the histogram is empty.
  uint64_t min_nanos() const;
  double mean_nanos() const {
    const uint64_t n = count();
    return n == 0 ? 0.0 : static_cast<double>(total_nanos()) / n;
  }
  /// Estimate of the q-quantile, q clamped into [0,1]. Returns 0 on an
  /// empty histogram; q = 0 reports min_nanos(), q = 1 reports
  /// max_nanos(), and interior quantiles report the containing bucket's
  /// upper edge clamped into [min, max].
  uint64_t QuantileNanos(double q) const;

  /// {"count":3,"mean_ns":120.0,"min_ns":88,"p50_ns":128,"p99_ns":256,
  ///  "max_ns":201} — plus "p99_trace":"<16hex>" when an exemplar exists.
  std::string ToJson() const;

 private:
  /// Index of the bucket containing the q-quantile; -1 on empty.
  int QuantileBucket(double q) const;

  std::array<std::atomic<uint64_t>, kBuckets> buckets_{};
  std::array<std::atomic<uint64_t>, kBuckets> exemplar_trace_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> total_nanos_{0};
  std::atomic<uint64_t> max_nanos_{0};
  std::atomic<uint64_t> min_nanos_{~0ULL};
};

}  // namespace relview

#endif  // RELVIEW_OBS_HISTOGRAM_H_
