#include "obs/telemetry.h"

#include <cstdio>

#include "obs/trace_context.h"

namespace relview {
namespace {

std::string SanitizeName(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  if (out.empty() || (out[0] >= '0' && out[0] <= '9')) out.insert(0, "_");
  return out;
}

void AppendSample(const std::string& name, const MetricSample& s,
                  std::string* out) {
  char buf[64];
  *out += name;
  *out += s.labels;
  // %.17g round-trips doubles; integers render without an exponent.
  std::snprintf(buf, sizeof(buf), " %.17g", s.value);
  *out += buf;
  if (!s.exemplar.empty()) {
    *out += " # ";
    *out += s.exemplar;
  }
  *out += "\n";
}

}  // namespace

MetricFamily CounterFamily(std::string name, std::string help, double value) {
  MetricFamily f{std::move(name), std::move(help), "counter", {}};
  f.samples.push_back({"", value});
  return f;
}

MetricFamily GaugeFamily(std::string name, std::string help, double value) {
  MetricFamily f{std::move(name), std::move(help), "gauge", {}};
  f.samples.push_back({"", value});
  return f;
}

MetricFamily SummaryFamily(std::string name, std::string help,
                           const LatencyHistogram& h) {
  MetricFamily f{std::move(name), std::move(help), "summary", {}};
  const double kNsToSec = 1e-9;
  f.samples.push_back({"{quantile=\"0\"}",
                       static_cast<double>(h.min_nanos()) * kNsToSec});
  f.samples.push_back({"{quantile=\"0.5\"}",
                       static_cast<double>(h.QuantileNanos(0.5)) * kNsToSec});
  MetricSample p99{"{quantile=\"0.99\"}",
                   static_cast<double>(h.QuantileNanos(0.99)) * kNsToSec, ""};
  if (const uint64_t t = h.ExemplarTrace(0.99); t != 0) {
    char ex[64];
    std::snprintf(ex, sizeof(ex), "{trace_id=\"%s\"} %.17g",
                  TraceIdHex(t).c_str(), p99.value);
    p99.exemplar = ex;
  }
  f.samples.push_back(std::move(p99));
  f.samples.push_back({"{quantile=\"1\"}",
                       static_cast<double>(h.max_nanos()) * kNsToSec});
  // _count and _sum are rendered specially (suffixed series).
  f.samples.push_back({"_count", static_cast<double>(h.count())});
  f.samples.push_back({"_sum", static_cast<double>(h.total_nanos()) * kNsToSec});
  return f;
}

std::string Label(const std::string& key, const std::string& value) {
  std::string out = "{" + key + "=\"";
  for (char c : value) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  out += "\"}";
  return out;
}

void TelemetryRegistry::Register(const std::string& name,
                                 TelemetryCollector collector) {
  MutexLock lock(mu_);
  for (auto& [n, c] : collectors_) {
    if (n == name) {
      c = std::move(collector);
      return;
    }
  }
  collectors_.emplace_back(name, std::move(collector));
}

void TelemetryRegistry::RegisterJson(const std::string& name,
                                     JsonProvider provider) {
  MutexLock lock(mu_);
  for (auto& [n, p] : json_sections_) {
    if (n == name) {
      p = std::move(provider);
      return;
    }
  }
  json_sections_.emplace_back(name, std::move(provider));
}

void TelemetryRegistry::Unregister(const std::string& name) {
  MutexLock lock(mu_);
  std::erase_if(collectors_, [&](const auto& e) { return e.first == name; });
  std::erase_if(json_sections_,
                [&](const auto& e) { return e.first == name; });
}

std::string TelemetryRegistry::RenderPrometheus() const {
  std::vector<std::pair<std::string, TelemetryCollector>> collectors;
  {
    MutexLock lock(mu_);
    collectors = collectors_;
  }
  std::string out;
  for (const auto& [section, collect] : collectors) {
    for (const MetricFamily& f : collect()) {
      const std::string name = SanitizeName(f.name);
      out += "# HELP " + name + " " + f.help + "\n";
      out += "# TYPE " + name + " " + f.type + "\n";
      for (const MetricSample& s : f.samples) {
        if (!s.labels.empty() && s.labels[0] == '_') {
          // Suffixed series (summary _count / _sum).
          AppendSample(name + s.labels, {"", s.value}, &out);
        } else {
          AppendSample(name, s, &out);
        }
      }
    }
  }
  return out;
}

std::string TelemetryRegistry::RenderJson() const {
  std::vector<std::pair<std::string, JsonProvider>> sections;
  {
    MutexLock lock(mu_);
    sections = json_sections_;
  }
  std::string out = "{";
  bool first = true;
  for (const auto& [name, provider] : sections) {
    if (!first) out += ",";
    first = false;
    out += "\"" + name + "\":" + provider();
  }
  out += "}";
  return out;
}

TelemetryRegistry& GlobalTelemetry() {
  static TelemetryRegistry* registry = new TelemetryRegistry();
  return *registry;
}

std::vector<MetricFamily> CollectTracerStats(const Tracer& tracer) {
  const TracerStats s = tracer.stats();
  std::vector<MetricFamily> out;
  out.push_back(GaugeFamily("relview_tracer_enabled", "1 when tracing is on",
                            tracer.enabled() ? 1 : 0));
  out.push_back(GaugeFamily("relview_tracer_sample_every",
                            "Keep 1 in N root spans",
                            static_cast<double>(tracer.sample_every())));
  out.push_back(CounterFamily("relview_tracer_spans_started_total",
                              "Span sites reached while tracing was enabled",
                              static_cast<double>(s.spans_started)));
  out.push_back(CounterFamily("relview_tracer_spans_recorded_total",
                              "Spans pushed to the trace ring",
                              static_cast<double>(s.spans_recorded)));
  out.push_back(CounterFamily("relview_tracer_spans_sampled_out_total",
                              "Spans dropped by head-based sampling",
                              static_cast<double>(s.spans_sampled_out)));
  out.push_back(CounterFamily("relview_tracer_dropped_oldest_total",
                              "Records overwritten by ring lapping",
                              static_cast<double>(s.dropped_oldest)));
  out.push_back(CounterFamily("relview_tracer_dropped_collisions_total",
                              "Records abandoned to a same-slot writer race",
                              static_cast<double>(s.dropped_collisions)));
  out.push_back(GaugeFamily("relview_tracer_records_buffered",
                            "Records currently readable from the ring",
                            static_cast<double>(s.records_buffered)));
  return out;
}

std::string TracerStatsJson(const Tracer& tracer) {
  const TracerStats s = tracer.stats();
  char buf[320];
  std::snprintf(
      buf, sizeof(buf),
      "{\"enabled\":%s,\"sample_every\":%u,\"spans_started\":%llu,"
      "\"spans_recorded\":%llu,\"spans_sampled_out\":%llu,"
      "\"dropped_oldest\":%llu,\"dropped_collisions\":%llu,"
      "\"records_buffered\":%llu}",
      tracer.enabled() ? "true" : "false", tracer.sample_every(),
      static_cast<unsigned long long>(s.spans_started),
      static_cast<unsigned long long>(s.spans_recorded),
      static_cast<unsigned long long>(s.spans_sampled_out),
      static_cast<unsigned long long>(s.dropped_oldest),
      static_cast<unsigned long long>(s.dropped_collisions),
      static_cast<unsigned long long>(s.records_buffered));
  return buf;
}

}  // namespace relview
