// DecisionTrace: per-update provenance of the translatability decision.
//
// The chase-based tests (Theorem 3 / Theorems 8, 9) compute — and without
// this layer, discard — exactly the evidence a caller needs to understand a
// rejection: which of conditions (a)/(b)/(c) failed, the FD f and the
// violator row r of the first failing probe of condition (c), how much
// chase work was spent, and how the incremental engine attributed that
// work (cache hits, base-chase extends, component sizes re-chased). The
// view/service layer fills one DecisionTrace per update and appends it to
// a bounded DecisionLog; the shell's `explain` command and the provenance
// tests read it back.
//
// This header deliberately depends only on deps/ + relational/ (the FD and
// Tuple vocabulary). Mapping a TranslationVerdict to its condition letter
// lives with the verdict enum in view/insertion.h, so obs stays below the
// view layer in the dependency order.

#ifndef RELVIEW_OBS_PROVENANCE_H_
#define RELVIEW_OBS_PROVENANCE_H_

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <vector>

#include "deps/fd.h"
#include "relational/tuple.h"
#include "relational/universe.h"
#include "util/annotations.h"

namespace relview {

struct DecisionTrace {
  /// Monotonic decision number (assigned by the DecisionLog on append).
  uint64_t sequence = 0;
  /// 'I' insert, 'D' delete, 'R' replace, '?' unknown.
  char kind = '?';
  bool accepted = false;
  /// Which of the paper's conditions rejected the update: 'a' (complement
  /// membership), 'b' (X∩Y key structure), 'c' (chase counterexample);
  /// '-' when accepted or rejected before the tests ran (input errors).
  char failed_condition = '-';
  /// TranslationVerdictName(...) or a StatusCode name for pre-test errors.
  std::string verdict;
  /// Textual rendering of the update ("(1,20)" / "(1,10) -> (1,20)").
  std::string update;

  // -- First failing probe of condition (c) --------------------------------
  bool has_violated_fd = false;
  FD violated_fd;
  /// Row r of V whose generic instance R(V,t,r,f) chase failed.
  bool has_violator = false;
  int violator_row = -1;
  Tuple violator_tuple;
  /// The mu row matching t on X∩Y, when the probe carried one.
  bool has_mu = false;
  Tuple mu_tuple;

  // -- Chase effort --------------------------------------------------------
  int chases_run = 0;
  int64_t chase_merges = 0;   // null-merge (equate) steps
  int64_t chase_rounds = 0;
  int64_t chase_work = 0;     // tuple-FD applications
  int64_t probes_run = 0;
  int64_t probes_screened = 0;
  int64_t probes_parallel = 0;

  // -- Incremental-engine attribution (deltas for this one decision) ------
  int64_t closure_hits = 0;
  int64_t closure_misses = 0;
  int64_t index_reuses = 0;
  int64_t index_rebuilds = 0;
  int64_t base_reuses = 0;
  int64_t base_rebuilds = 0;
  int64_t base_extends = 0;
  int64_t base_shrinks = 0;
  /// Rows of the touched components re-chased for this decision.
  int64_t component_rows_rechased = 0;

  // -- Timing / batching ---------------------------------------------------
  int64_t check_nanos = 0;
  int64_t apply_nanos = 0;
  /// Position within the originating ApplyBatch. Every service update
  /// flows through ApplyBatch (a single Apply is a batch of one), so this
  /// is 0-based and only -1 when the producer never set it.
  int batch_index = -1;

  /// Multi-line human-readable explanation (the shell's `explain` output).
  std::string ToString(const Universe* u = nullptr) const;
  /// Single-line JSON object.
  std::string ToJson(const Universe* u = nullptr) const;
};

/// Bounded, thread-safe log of the most recent DecisionTraces.
class DecisionLog {
 public:
  explicit DecisionLog(size_t capacity = 256);

  /// Appends `t` (stamping t.sequence) and returns the stamped sequence.
  uint64_t Push(DecisionTrace t) RELVIEW_EXCLUDES(mu_);

  /// Oldest-first copy of the retained traces.
  std::vector<DecisionTrace> Snapshot() const RELVIEW_EXCLUDES(mu_);
  /// The most recent trace, if any.
  std::optional<DecisionTrace> Last() const RELVIEW_EXCLUDES(mu_);
  /// Most recent trace for which `accepted == false`, if any retained.
  std::optional<DecisionTrace> LastRejected() const RELVIEW_EXCLUDES(mu_);

  uint64_t total() const RELVIEW_EXCLUDES(mu_);
  size_t capacity() const { return capacity_; }

 private:
  const size_t capacity_;
  mutable Mutex mu_;
  std::deque<DecisionTrace> traces_ RELVIEW_GUARDED_BY(mu_);
  uint64_t next_sequence_ RELVIEW_GUARDED_BY(mu_) = 0;
};

}  // namespace relview

#endif  // RELVIEW_OBS_PROVENANCE_H_
