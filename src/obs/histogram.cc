#include "obs/histogram.h"

#include <algorithm>
#include <cstdio>

namespace relview {
namespace {

int BucketOf(int64_t nanos) {
  if (nanos <= 1) return 0;
  int b = 63 - __builtin_clzll(static_cast<uint64_t>(nanos));
  return b >= LatencyHistogram::kBuckets ? LatencyHistogram::kBuckets - 1 : b;
}

void AtomicMax(std::atomic<uint64_t>* target, uint64_t value) {
  uint64_t cur = target->load(std::memory_order_relaxed);
  while (cur < value &&
         !target->compare_exchange_weak(cur, value,
                                        std::memory_order_relaxed)) {
  }
}

void AtomicMin(std::atomic<uint64_t>* target, uint64_t value) {
  uint64_t cur = target->load(std::memory_order_relaxed);
  while (cur > value &&
         !target->compare_exchange_weak(cur, value,
                                        std::memory_order_relaxed)) {
  }
}

}  // namespace

void LatencyHistogram::Record(int64_t nanos) {
  if (nanos < 0) nanos = 0;
  buckets_[BucketOf(nanos)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  total_nanos_.fetch_add(static_cast<uint64_t>(nanos),
                         std::memory_order_relaxed);
  AtomicMax(&max_nanos_, static_cast<uint64_t>(nanos));
  AtomicMin(&min_nanos_, static_cast<uint64_t>(nanos));
}

uint64_t LatencyHistogram::min_nanos() const {
  const uint64_t m = min_nanos_.load(std::memory_order_relaxed);
  return m == ~0ULL ? 0 : m;
}

uint64_t LatencyHistogram::QuantileNanos(double q) const {
  const uint64_t n = count();
  if (n == 0) return 0;
  if (q <= 0) return min_nanos();
  if (q >= 1) return max_nanos();
  uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(n - 1)) + 1;
  uint64_t seen = 0;
  for (int b = 0; b < kBuckets; ++b) {
    seen += buckets_[b].load(std::memory_order_relaxed);
    if (seen >= rank) {
      const uint64_t edge = b >= 63 ? ~0ULL : (2ULL << b);  // upper edge
      return std::clamp(edge, min_nanos(), max_nanos());
    }
  }
  return max_nanos();
}

std::string LatencyHistogram::ToJson() const {
  char buf[224];
  std::snprintf(
      buf, sizeof(buf),
      "{\"count\":%llu,\"mean_ns\":%.1f,\"min_ns\":%llu,\"p50_ns\":%llu,"
      "\"p99_ns\":%llu,\"max_ns\":%llu}",
      static_cast<unsigned long long>(count()), mean_nanos(),
      static_cast<unsigned long long>(min_nanos()),
      static_cast<unsigned long long>(QuantileNanos(0.50)),
      static_cast<unsigned long long>(QuantileNanos(0.99)),
      static_cast<unsigned long long>(max_nanos()));
  return buf;
}

}  // namespace relview
