#include "obs/histogram.h"

#include <algorithm>
#include <cstdio>

#include "obs/trace_context.h"

namespace relview {
namespace {

int BucketOf(int64_t nanos) {
  if (nanos <= 1) return 0;
  int b = 63 - __builtin_clzll(static_cast<uint64_t>(nanos));
  return b >= LatencyHistogram::kBuckets ? LatencyHistogram::kBuckets - 1 : b;
}

void AtomicMax(std::atomic<uint64_t>* target, uint64_t value) {
  uint64_t cur = target->load(std::memory_order_relaxed);
  while (cur < value &&
         !target->compare_exchange_weak(cur, value,
                                        std::memory_order_relaxed)) {
  }
}

void AtomicMin(std::atomic<uint64_t>* target, uint64_t value) {
  uint64_t cur = target->load(std::memory_order_relaxed);
  while (cur > value &&
         !target->compare_exchange_weak(cur, value,
                                        std::memory_order_relaxed)) {
  }
}

}  // namespace

void LatencyHistogram::RecordTraced(int64_t nanos, uint64_t trace_id) {
  if (nanos < 0) nanos = 0;
  const int b = BucketOf(nanos);
  buckets_[b].fetch_add(1, std::memory_order_relaxed);
  if (trace_id != 0) {
    exemplar_trace_[b].store(trace_id, std::memory_order_relaxed);
  }
  count_.fetch_add(1, std::memory_order_relaxed);
  total_nanos_.fetch_add(static_cast<uint64_t>(nanos),
                         std::memory_order_relaxed);
  AtomicMax(&max_nanos_, static_cast<uint64_t>(nanos));
  AtomicMin(&min_nanos_, static_cast<uint64_t>(nanos));
}

uint64_t LatencyHistogram::min_nanos() const {
  const uint64_t m = min_nanos_.load(std::memory_order_relaxed);
  return m == ~0ULL ? 0 : m;
}

int LatencyHistogram::QuantileBucket(double q) const {
  const uint64_t n = count();
  if (n == 0) return -1;
  q = std::clamp(q, 0.0, 1.0);
  uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(n - 1)) + 1;
  uint64_t seen = 0;
  for (int b = 0; b < kBuckets; ++b) {
    seen += buckets_[b].load(std::memory_order_relaxed);
    if (seen >= rank) return b;
  }
  return kBuckets - 1;
}

uint64_t LatencyHistogram::QuantileNanos(double q) const {
  const uint64_t n = count();
  if (n == 0) return 0;
  if (q <= 0) return min_nanos();
  if (q >= 1) return max_nanos();
  const int b = QuantileBucket(q);
  const uint64_t edge = b >= 63 ? ~0ULL : (2ULL << b);  // upper edge
  return std::clamp(edge, min_nanos(), max_nanos());
}

uint64_t LatencyHistogram::ExemplarTrace(double q) const {
  const int b = QuantileBucket(q);
  if (b < 0) return 0;
  // The quantile's own bucket may predate tracing (or hold only unsampled
  // samples); fall back outward to the nearest bucket with an exemplar so
  // an operator always gets *some* nearby trace when one exists.
  for (int d = 0; d < kBuckets; ++d) {
    const int lo = b - d;
    const int hi = b + d;
    if (lo >= 0) {
      const uint64_t t = exemplar_trace_[lo].load(std::memory_order_relaxed);
      if (t != 0) return t;
    }
    if (hi < kBuckets && hi != lo) {
      const uint64_t t = exemplar_trace_[hi].load(std::memory_order_relaxed);
      if (t != 0) return t;
    }
  }
  return 0;
}

std::string LatencyHistogram::ToJson() const {
  char buf[224];
  std::snprintf(
      buf, sizeof(buf),
      "{\"count\":%llu,\"mean_ns\":%.1f,\"min_ns\":%llu,\"p50_ns\":%llu,"
      "\"p99_ns\":%llu,\"max_ns\":%llu",
      static_cast<unsigned long long>(count()), mean_nanos(),
      static_cast<unsigned long long>(min_nanos()),
      static_cast<unsigned long long>(QuantileNanos(0.50)),
      static_cast<unsigned long long>(QuantileNanos(0.99)),
      static_cast<unsigned long long>(max_nanos()));
  std::string out = buf;
  const uint64_t exemplar = ExemplarTrace(0.99);
  if (exemplar != 0) {
    out += ",\"p99_trace\":\"" + TraceIdHex(exemplar) + "\"";
  }
  out += "}";
  return out;
}

}  // namespace relview
