// Complementary views (Section 2 of the paper).
//
// A view here is a projection pi_X of the single relation over universe U
// with dependencies Sigma. X and Y are *complementary* when pi_X(R),
// pi_Y(R) jointly determine R among legal instances.
//
//  * Theorem 1: with Sigma = FDs + JDs, X and Y are complementary iff
//    Sigma |= *[X, Y] (so X ∪ Y = U and the reconstruction operator is the
//    natural join); for FD-only Sigma this is "X ∩ Y is a superkey of X or
//    of Y".
//  * Corollary 2: a minimal (nonredundant) complement is found in
//    polynomial time by greedy removal.
//  * Theorem 2: a minimum-cardinality complement is NP-complete; we provide
//    an exact exponential solver.
//  * Theorem 10: with EFDs present, complementarity becomes (a) the
//    embedded MVD X∩Y ->-> X−Y | Y−X plus (b) Sigma_F |= X∪Y -> U.

#ifndef RELVIEW_VIEW_COMPLEMENT_H_
#define RELVIEW_VIEW_COMPLEMENT_H_

#include <vector>

#include "deps/dep_set.h"
#include "relational/attr_set.h"
#include "util/status.h"

namespace relview {

/// Theorem 1 / Theorem 10 test. Handles FDs, JDs and EFDs in `sigma`.
bool AreComplementary(const AttrSet& universe, const DependencySet& sigma,
                      const AttrSet& x, const AttrSet& y);

/// FD-only fast path: X ∪ Y == U and X∩Y superkey of X or of Y. Equivalent
/// to AreComplementary when sigma has neither JDs nor EFDs.
bool AreComplementaryFDOnly(const AttrSet& universe, const FDSet& fds,
                            const AttrSet& x, const AttrSet& y);

/// Corollary 2: starting from the trivial complement U, greedily removes
/// attributes of X while complementarity is preserved. The removal order is
/// ascending AttrId unless `order` supplies a permutation of X's members to
/// try (attributes outside X are never removable without EFDs).
AttrSet MinimalComplement(const AttrSet& universe, const DependencySet& sigma,
                          const AttrSet& x,
                          const std::vector<AttrId>* order = nullptr);

struct MinimumComplementResult {
  AttrSet complement;
  /// Number of complementarity tests performed (search effort).
  int64_t tests = 0;
};

/// Exact minimum-cardinality complement of X (Theorem 2's optimization
/// problem; worst-case exponential in |X|). Searches Y = W ∪ (U − X) over
/// W ⊆ X in increasing |W|.
Result<MinimumComplementResult> MinimumComplement(
    const AttrSet& universe, const DependencySet& sigma, const AttrSet& x);

/// Decision form used by the Theorem 2 reduction: does X have a complement
/// with exactly k attributes?
Result<bool> HasComplementOfSize(const AttrSet& universe,
                                 const DependencySet& sigma, const AttrSet& x,
                                 int k);

}  // namespace relview

#endif  // RELVIEW_VIEW_COMPLEMENT_H_
