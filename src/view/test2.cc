#include "view/test2.h"

#include <algorithm>
#include <array>
#include <vector>

#include "view/generic_instance.h"

namespace relview {

namespace {

/// Per-column partition of the four cell objects {t̂, nu, mu1, mu2}.
class CellPartition {
 public:
  static constexpr int kT = 0;   // t̂
  static constexpr int kN = 1;   // nu
  static constexpr int kM1 = 2;  // mu1
  static constexpr int kM2 = 3;  // mu2

  CellPartition() {
    for (auto& col : parent_) col = {0, 1, 2, 3};
  }

  int Find(AttrId col, int obj) const {
    int p = parent_[col][obj];
    while (p != parent_[col][p]) p = parent_[col][p];
    return p;
  }

  /// Returns true if a merge happened.
  bool Union(AttrId col, int a, int b) {
    const int ra = Find(col, a);
    const int rb = Find(col, b);
    if (ra == rb) return false;
    parent_[col][std::max(ra, rb)] = std::min(ra, rb);
    return true;
  }

  bool Same(AttrId col, int a, int b) const {
    return Find(col, a) == Find(col, b);
  }

 private:
  std::array<std::array<int, 4>, AttrSet::kMaxAttrs> parent_;
};

}  // namespace

GoodComplementReport CheckGoodComplement(const AttrSet& universe,
                                         const FDSet& fds, const AttrSet& x,
                                         const AttrSet& y,
                                         GoodComplementMode mode) {
  GoodComplementReport report;
  // The pairs whose legality is assumed: (mu1, nu) from R1 |= Sigma;
  // (mu2, nu), (nu, t̂), (mu2, t̂) from R2 |= Sigma and T_u[R2] |= Sigma.
  constexpr int kPairs[4][2] = {
      {CellPartition::kM1, CellPartition::kN},
      {CellPartition::kM2, CellPartition::kN},
      {CellPartition::kN, CellPartition::kT},
      {CellPartition::kM2, CellPartition::kT},
  };

  for (const FD& target : fds.fds()) {
    if (target.Trivial()) continue;
    CellPartition part;
    // Construction equalities:
    //   nu agrees with t̂ on Y (it is the complement-matching row);
    //   mu1 agrees with t̂ on Z (the violation premise);
    //   mu2 is linked to mu1 per the chosen mode.
    y.ForEach([&](AttrId w) {
      part.Union(w, CellPartition::kT, CellPartition::kN);
    });
    target.lhs.ForEach([&](AttrId w) {
      part.Union(w, CellPartition::kT, CellPartition::kM1);
    });
    const AttrSet link = (mode == GoodComplementMode::kSemantic)
                             ? x
                             : (universe - target.lhs);
    link.ForEach([&](AttrId w) {
      part.Union(w, CellPartition::kM1, CellPartition::kM2);
    });

    // Fixpoint over the legality pairs.
    bool changed = true;
    while (changed) {
      changed = false;
      ++report.fixpoint_rounds;
      for (const FD& fd : fds.fds()) {
        for (const auto& pair : kPairs) {
          bool agree = true;
          fd.lhs.ForEach([&](AttrId w) {
            if (!part.Same(w, pair[0], pair[1])) agree = false;
          });
          if (agree && part.Union(fd.rhs, pair[0], pair[1])) changed = true;
        }
      }
    }

    if (!part.Same(target.rhs, CellPartition::kM1, CellPartition::kT)) {
      report.good = false;
      report.counterexample_fd = target;
      return report;
    }
  }
  return report;
}

Result<Test2Report> RunTest2(const AttrSet& universe, const FDSet& fds,
                             const AttrSet& x, const AttrSet& y,
                             const Relation& v, const Tuple& t,
                             ChaseBackend backend) {
  Test2Report report;
  if (!x.SubsetOf(universe) || (x | y) != universe || v.attrs() != x ||
      t.arity() != v.arity()) {
    return Status::InvalidArgument("bad view-update arguments");
  }
  if (v.ContainsRow(t)) {
    report.verdict = TranslationVerdict::kIdentity;
    return report;
  }
  const Schema& vs = v.schema();
  const AttrSet common = x & y;
  const AttrSet y_only = y - x;

  int mu = -1;
  for (int i = 0; i < v.size() && mu < 0; ++i) {
    if (v.row(i).AgreesWith(t, vs, common)) mu = i;
  }
  if (mu < 0) {
    report.verdict = TranslationVerdict::kFailsComplementMembership;
    return report;
  }
  if (fds.IsSuperkey(common, x)) {
    report.verdict = TranslationVerdict::kFailsCommonPartKeyOfX;
    return report;
  }
  if (!fds.IsSuperkey(common, y)) {
    report.verdict = TranslationVerdict::kFailsCommonPartNotKeyOfY;
    return report;
  }

  // Canonical database R0: the chased null-filled view.
  GenericInstance generic = GenericInstance::Build(universe, x, v);
  const ChaseOutcome base = ChaseInstance(generic.relation(), fds, backend);
  report.stats = base.stats;
  if (base.conflict) {
    // No legal database projects to V; vacuously translatable.
    report.verdict = TranslationVerdict::kTranslatable;
    return report;
  }
  const Relation& r0 = base.result;
  const Schema& fs = r0.schema();

  // The inserted database tuple t̂ = t * pi_Y(R0).
  Tuple inserted(fs.arity());
  x.ForEach([&](AttrId a) { inserted.Set(fs, a, t.At(vs, a)); });
  y_only.ForEach([&](AttrId a) {
    inserted.Set(fs, a, base.Resolve(generic.NullAt(mu, a)));
  });

  // T_u[R0] |= Sigma: only pairs involving the inserted tuple can violate.
  for (const FD& fd : fds.fds()) {
    for (int i = 0; i < r0.size(); ++i) {
      const Tuple& row = r0.row(i);
      if (row.AgreesWith(inserted, fs, fd.lhs) &&
          row.At(fs, fd.rhs) != inserted.At(fs, fd.rhs)) {
        report.verdict = TranslationVerdict::kFailsChase;
        report.violated_fd = fd;
        report.witness_row = i;
        return report;
      }
    }
  }
  report.verdict = TranslationVerdict::kTranslatable;
  return report;
}

}  // namespace relview
