#include "view/test1.h"

#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "chase/instance_chase.h"
#include "obs/trace.h"
#include "view/chase_test.h"

namespace relview {

namespace {

struct Common {
  AttrSet common;      // X ∩ Y
  AttrSet x_only;      // X − Y
  AttrSet y_only;      // Y − X
  std::vector<int> mu_rows;
};

/// Shared preamble: conditions (a)/(b) (Test 1 presupposes them, like the
/// exact test) and the mu set.
Result<Test1Report> Preamble(const AttrSet& universe, const FDSet& fds,
                             const AttrSet& x, const AttrSet& y,
                             const Relation& v, const Tuple& t, Common* c) {
  Test1Report report;
  if (!x.SubsetOf(universe) || !y.SubsetOf(universe) ||
      (x | y) != universe || v.attrs() != x || t.arity() != v.arity()) {
    return Status::InvalidArgument("bad view-update arguments");
  }
  if (v.ContainsRow(t)) {
    report.verdict = TranslationVerdict::kIdentity;
    return report;
  }
  c->common = x & y;
  c->x_only = x - y;
  c->y_only = y - x;
  const Schema& vs = v.schema();
  for (int i = 0; i < v.size(); ++i) {
    if (v.row(i).AgreesWith(t, vs, c->common)) c->mu_rows.push_back(i);
  }
  if (c->mu_rows.empty()) {
    report.verdict = TranslationVerdict::kFailsComplementMembership;
    return report;
  }
  if (fds.IsSuperkey(c->common, x)) {
    report.verdict = TranslationVerdict::kFailsCommonPartKeyOfX;
    return report;
  }
  if (!fds.IsSuperkey(c->common, y)) {
    report.verdict = TranslationVerdict::kFailsCommonPartNotKeyOfY;
    return report;
  }
  report.verdict = TranslationVerdict::kTranslatable;
  return report;
}

/// Closure-based success of the two-tuple chase on {r, mu} for FD
/// lhs -> rhs: seed = (X-agreement of r and mu) ∪ (lhs ∩ (Y−X)). The
/// mathematics lives in PairScreenSucceeds (chase_test.h), shared with
/// the incremental engine's probe screen.
bool PairSucceeds(const FDSet& fds, const FD& fd, bool rhs_in_x,
                  const AttrSet& x, const AttrSet& y_only,
                  const AttrSet& x_agree, int64_t* probes,
                  ClosureCache* cache) {
  ++*probes;
  return PairScreenSucceeds(fds, fd, rhs_in_x, x, y_only, x_agree, cache);
}

/// The literal two-tuple chase (reference backend).
bool PairSucceedsByChase(const FDSet& fds, const FD& fd, bool rhs_in_x,
                         const AttrSet& universe, const AttrSet& x,
                         const AttrSet& y_only, const Relation& v, int r,
                         int mu, const Tuple& t, int64_t* probes) {
  (void)t;
  ++*probes;
  const Schema& vs = v.schema();
  Relation pair(universe);
  const Schema& ps = pair.schema();
  uint32_t next_null = 0;
  auto extend = [&](int row, uint32_t base) {
    Tuple out(ps.arity());
    x.ForEach([&](AttrId a) { out.Set(ps, a, v.row(row).At(vs, a)); });
    y_only.ForEach([&](AttrId a) {
      out.Set(ps, a, Value::Null(base + next_null++));
    });
    return out;
  };
  Tuple rr = extend(r, 0);
  next_null = 0;
  Tuple mm = extend(mu, 1000000);
  // Impose r ~ mu on Z ∩ (Y−X).
  (fd.lhs & y_only).ForEach([&](AttrId a) { rr.Set(ps, a, mm.At(ps, a)); });
  pair.AddRow(rr);
  pair.AddRow(mm);
  const ChaseOutcome out = ChaseInstance(pair, fds, ChaseBackend::kHash);
  if (out.conflict) return true;
  if (!rhs_in_x) {
    return out.Resolve(rr.At(ps, fd.rhs)) == out.Resolve(mm.At(ps, fd.rhs));
  }
  return false;
}

Result<Test1Report> RunPairwise(const AttrSet& universe, const FDSet& fds,
                                const AttrSet& x, const AttrSet& y,
                                const Relation& v, const Tuple& t,
                                bool by_chase, ClosureCache* cache) {
  Common c;
  RELVIEW_ASSIGN_OR_RETURN(Test1Report report,
                           Preamble(universe, fds, x, y, v, t, &c));
  report.used_backend =
      by_chase ? Test1Backend::kTwoTupleChase : Test1Backend::kClosure;
  if (report.verdict != TranslationVerdict::kTranslatable) return report;
  const Schema& vs = v.schema();

  for (const FD& fd : fds.fds()) {
    const AttrSet zx = fd.lhs & x;
    const bool rhs_in_x = x.Contains(fd.rhs);
    for (int r = 0; r < v.size(); ++r) {
      const Tuple& vr = v.row(r);
      if (!vr.AgreesWith(t, vs, zx)) continue;
      if (rhs_in_x && vr.At(vs, fd.rhs) == t.At(vs, fd.rhs)) continue;

      bool success = false;
      for (int mu : c.mu_rows) {
        if (by_chase) {
          if (r == mu) {
            // Degenerate single-tuple "pair": the watched cells coincide.
            success = !rhs_in_x;
          } else {
            success = PairSucceedsByChase(fds, fd, rhs_in_x, universe, x,
                                          c.y_only, v, r, mu, t,
                                          &report.probes);
          }
        } else {
          AttrSet x_agree;
          x.ForEach([&](AttrId a) {
            if (vr.At(vs, a) == v.row(mu).At(vs, a)) x_agree.Add(a);
          });
          success = PairSucceeds(fds, fd, rhs_in_x, x, c.y_only, x_agree,
                                 &report.probes, cache);
        }
        if (success) break;
      }
      if (!success) {
        report.verdict = TranslationVerdict::kFailsChase;
        report.violated_fd = fd;
        report.witness_row = r;
        return report;
      }
    }
  }
  return report;
}

/// The indexed backend (the paper's steps (1)-(4)). When |X−Y| exceeds the
/// pattern-mask capacity the test degrades to the closure backend (same
/// soundness, weaker acceptance bound is not at issue — kClosure accepts a
/// subset of kIndexed) and records the fallback in the report.
Result<Test1Report> RunIndexed(const AttrSet& universe, const FDSet& fds,
                               const AttrSet& x, const AttrSet& y,
                               const Relation& v, const Tuple& t,
                               ClosureCache* cache) {
  {
    const AttrSet x_only_probe = x - y;
    if (static_cast<int>(x_only_probe.ToVector().size()) > 16) {
      RELVIEW_ASSIGN_OR_RETURN(
          Test1Report fallback,
          RunPairwise(universe, fds, x, y, v, t, /*by_chase=*/false, cache));
      fallback.indexed_fell_back = true;
      return fallback;
    }
  }
  Common c;
  RELVIEW_ASSIGN_OR_RETURN(Test1Report report,
                           Preamble(universe, fds, x, y, v, t, &c));
  report.used_backend = Test1Backend::kIndexed;
  if (report.verdict != TranslationVerdict::kTranslatable) return report;
  const Schema& vs = v.schema();

  // All mu rows agree with t on X∩Y and (logically, via X∩Y -> Y) on the
  // complement columns; they differ only on X − Y. Enumerate the exact
  // X−Y agreement patterns of T against each candidate r via per-subset
  // match counts plus a superset Möbius transform.
  const std::vector<AttrId> xo = c.x_only.ToVector();
  const int k = static_cast<int>(xo.size());
  const uint32_t nmask = 1u << k;

  // Per-subset hash multiset of T's projections (the role of the paper's
  // sorted copies T_S).
  std::vector<std::unordered_map<uint64_t, int>> index(nmask);
  for (uint32_t s = 0; s < nmask; ++s) {
    AttrSet cols;
    for (int i = 0; i < k; ++i) {
      if (s & (1u << i)) cols.Add(xo[i]);
    }
    for (int mu : c.mu_rows) {
      ++index[s][v.row(mu).HashOn(vs, cols)];
    }
  }

  // Closure memo (the role of step (3)'s 2^|U| precomputed closures):
  // the shared cache when the caller provides one, else a local one that
  // lives for this call only.
  ClosureCache local_cache(256);
  ClosureCache* memo = cache != nullptr ? cache : &local_cache;
  auto closure_of = [&](const AttrSet& s) { return memo->Closure(fds, s); };

  for (const FD& fd : fds.fds()) {
    const AttrSet zx = fd.lhs & x;
    const bool rhs_in_x = x.Contains(fd.rhs);
    for (int r = 0; r < v.size(); ++r) {
      const Tuple& vr = v.row(r);
      if (!vr.AgreesWith(t, vs, zx)) continue;
      if (rhs_in_x && vr.At(vs, fd.rhs) == t.At(vs, fd.rhs)) continue;

      // r's agreement with every mu on X∩Y is r-vs-t agreement there.
      AttrSet common_agree;
      c.common.ForEach([&](AttrId a) {
        if (vr.At(vs, a) == t.At(vs, a)) common_agree.Add(a);
      });
      // match[s]: #mu agreeing with r on at least the pattern s.
      std::vector<int> match(nmask, 0);
      for (uint32_t s = 0; s < nmask; ++s) {
        AttrSet cols;
        for (int i = 0; i < k; ++i) {
          if (s & (1u << i)) cols.Add(xo[i]);
        }
        auto it = index[s].find(vr.HashOn(vs, cols));
        match[s] = (it == index[s].end()) ? 0 : it->second;
      }
      // exact[s]: #mu agreeing with r on exactly the pattern s (superset
      // Möbius transform).
      std::vector<int> exact(match);
      for (int i = 0; i < k; ++i) {
        for (uint32_t s = 0; s < nmask; ++s) {
          if (!(s & (1u << i))) exact[s] -= exact[s | (1u << i)];
        }
      }

      // Accumulation loop: G = complement columns where r is known equal
      // to the (shared) mu extension; the paper's "make r agree with nu on
      // S+".
      AttrSet g = fd.lhs & c.y_only;
      bool success = false;
      bool changed = true;
      while (changed && !success) {
        changed = false;
        for (uint32_t s = 0; s < nmask && !success; ++s) {
          if (exact[s] <= 0) continue;
          AttrSet pattern;
          for (int i = 0; i < k; ++i) {
            if (s & (1u << i)) pattern.Add(xo[i]);
          }
          const AttrSet seed = common_agree | pattern | g;
          ++report.probes;
          const AttrSet cl = closure_of(seed);
          // Conflict with this exact-pattern mu: the chase would equate
          // distinct constants of V.
          if (!(cl & x).SubsetOf(common_agree | pattern)) {
            success = true;
            break;
          }
          const AttrSet gain = cl & c.y_only;
          if (!gain.SubsetOf(g)) {
            g |= gain;
            changed = true;
          }
        }
        if (!rhs_in_x && g.Contains(fd.rhs)) success = true;
      }
      if (!success) {
        report.verdict = TranslationVerdict::kFailsChase;
        report.violated_fd = fd;
        report.witness_row = r;
        return report;
      }
    }
  }
  return report;
}

}  // namespace

Result<Test1Report> RunTest1(const AttrSet& universe, const FDSet& fds,
                             const AttrSet& x, const AttrSet& y,
                             const Relation& v, const Tuple& t,
                             const Test1Options& opts) {
  RELVIEW_TRACE_SPAN("test1.run");
  switch (opts.backend) {
    case Test1Backend::kTwoTupleChase:
      return RunPairwise(universe, fds, x, y, v, t, /*by_chase=*/true,
                         opts.closure_cache);
    case Test1Backend::kClosure:
      return RunPairwise(universe, fds, x, y, v, t, /*by_chase=*/false,
                         opts.closure_cache);
    case Test1Backend::kIndexed:
      return RunIndexed(universe, fds, x, y, v, t, opts.closure_cache);
  }
  return Status::InvalidArgument("unknown Test1 backend");
}

}  // namespace relview
