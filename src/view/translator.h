/// \file
/// ViewTranslator: the user-facing facade. Owns the schema (U, Sigma), a
/// view X, a constant complement Y, and (optionally) a bound database
/// instance. Implements the paper's full scenario: the user declares a view
/// and a complement (validated for complementarity, Theorem 1), then issues
/// view updates which are checked (Theorems 3, 8, 9) and — when
/// translatable — applied to the underlying database as the unique
/// constant-complement translation.
///
/// By default checks run on the incremental engine (view_index.h): the
/// view instance, its indexes, and the base-chase fixpoint persist across
/// calls and are maintained in place when an accepted update is applied,
/// so a sustained update stream amortizes all per-check setup. Verdicts
/// and witnesses are identical to the from-scratch free functions; set
/// TranslatorOptions.incremental = false to run those directly instead.

#ifndef RELVIEW_VIEW_TRANSLATOR_H_
#define RELVIEW_VIEW_TRANSLATOR_H_

#include <memory>
#include <optional>

#include "deps/dep_set.h"
#include "relational/relation.h"
#include "relational/universe.h"
#include "util/status.h"
#include "view/complement.h"
#include "view/deletion.h"
#include "view/insertion.h"
#include "view/replacement.h"
#include "view/test2.h"
#include "view/view_index.h"

namespace relview {

/// Tuning knobs for ViewTranslator::Create.
struct TranslatorOptions {
  /// Serve checks from the persistent view index + cached base chase.
  bool incremental = true;
  /// Fan condition-(c) probes out over this many threads (engine only).
  int probe_threads = 1;
  /// Screen probes with Test 1's closure criterion first (engine only;
  /// sound — never changes a verdict or witness).
  bool pair_screen = true;
  /// Entry capacity of the engine's attribute-closure cache.
  size_t closure_cache_capacity = ClosureCache::kDefaultCapacity;
  /// Re-verify SatisfiesAll after every applied translation. The Apply*
  /// translations are legality-preserving by Theorems 3/8/9, so this is a
  /// paranoia knob: it costs O(|R|·|Sigma|) per write.
  bool paranoid_checks = false;
  /// Instance-chase implementation used by the checks.
  ChaseBackend backend = ChaseBackend::kHash;
  /// Storage layout for the engine's view instance. kColumnar keeps each
  /// attribute as a contiguous dictionary-code vector and forces the
  /// chase backend to kColumnar (the vectorized probe path reads codes
  /// directly); kRowHash is the row-at-a-time reference layout.
  StoreKind store = StoreKind::kRowHash;
};

/// The paper's full scenario behind one object: declare a view X with a
/// constant complement Y over (U, Sigma), bind an instance, then issue
/// view updates that are checked and translated per Theorems 3/8/9.
class ViewTranslator {
 public:
  /// Validates that x and y are complementary under sigma (Theorem 1 /
  /// Theorem 10) and that sigma's FDs are canonical. The Universe is kept
  /// for diagnostics only.
  static Result<ViewTranslator> Create(Universe universe,
                                       DependencySet sigma, AttrSet x,
                                       AttrSet y,
                                       TranslatorOptions options = {});

  /// Copies share schema and database but not caches: the copy rebuilds
  /// its engine lazily on first use. Moves carry the engine along.
  ViewTranslator(const ViewTranslator& other);
  /// Copy assignment; same cache semantics as the copy constructor.
  ViewTranslator& operator=(const ViewTranslator& other);
  /// Move; carries the live engine along.
  ViewTranslator(ViewTranslator&&) = default;
  /// Move assignment; carries the live engine along.
  ViewTranslator& operator=(ViewTranslator&&) = default;

  /// The attribute universe U.
  const Universe& universe() const { return universe_; }
  /// The dependency set Sigma (canonical FDs).
  const DependencySet& sigma() const { return sigma_; }
  /// The view attributes X.
  const AttrSet& view() const { return x_; }
  /// The complement attributes Y.
  const AttrSet& complement() const { return y_; }
  /// The options this translator was created with.
  const TranslatorOptions& options() const { return options_; }

  /// Whether Y is a good complement (Test 2 precomputation; cached).
  bool complement_is_good() const { return good_.good; }
  /// The full Test 2 report behind complement_is_good().
  const GoodComplementReport& good_report() const { return good_; }

  /// Binds the database instance the view is computed from. Must satisfy
  /// sigma.
  Status Bind(Relation database);
  /// Whether a database instance is bound.
  bool bound() const { return database_.has_value(); }
  /// The bound database (undefined before a successful Bind).
  const Relation& database() const { return *database_; }

  /// Replaces the bound database without re-validating Sigma. For trusted
  /// callers (the service layer) installing a relation produced by the
  /// Apply* translations, which are legality-preserving by Theorems 3/8/9.
  void InstallDatabase(Relation database);

  /// pi_X of the bound database (served from the engine's cached view
  /// when live).
  Result<Relation> ViewInstance() const;

  /// Translatability check for inserting `t` (Theorem 3); no mutation.
  Result<InsertionReport> CanInsert(const Tuple& t) const;
  /// Translatability check for deleting `t` (Theorem 8); no mutation.
  Result<DeletionReport> CanDelete(const Tuple& t) const;
  /// Translatability check for replacing `t1` by `t2` (Theorem 9); no
  /// mutation.
  Result<ReplacementReport> CanReplace(const Tuple& t1,
                                       const Tuple& t2) const;

  /// Check-and-apply insertion returning the full report (verdict +
  /// witness + timing). The update is applied — and the engine's caches
  /// maintained incrementally — only for a translatable, non-identity
  /// verdict; an untranslatable verdict is returned in the report, not as
  /// an error.
  Result<InsertionReport> InsertWithReport(const Tuple& t);
  /// Check-and-apply deletion; report semantics as InsertWithReport.
  Result<DeletionReport> DeleteWithReport(const Tuple& t);
  /// Check-and-apply replacement; report semantics as InsertWithReport.
  Result<ReplacementReport> ReplaceWithReport(const Tuple& t1,
                                              const Tuple& t2);

  /// Check-and-apply insertion. Returns Untranslatable (with the verdict
  /// in the message) when rejected; on success the bound database is
  /// updated in place and maps onto the updated view.
  Status Insert(const Tuple& t);
  /// Check-and-apply deletion; status semantics as Insert.
  Status Delete(const Tuple& t);
  /// Check-and-apply replacement; status semantics as Insert.
  Status Replace(const Tuple& t1, const Tuple& t2);

  /// Engine counters (zeroed when the engine has not been built).
  EngineStats engine_stats() const;

 private:
  ViewTranslator(Universe universe, DependencySet sigma, AttrSet x,
                 AttrSet y);

  /// The live engine, built on demand. Null when incremental is off or no
  /// database is bound.
  TranslatabilityEngine* EngineOrNull() const;

  Universe universe_;
  DependencySet sigma_;
  AttrSet x_;
  AttrSet y_;
  TranslatorOptions options_;
  GoodComplementReport good_;
  std::optional<Relation> database_;
  mutable std::unique_ptr<TranslatabilityEngine> engine_;
};

}  // namespace relview

#endif  // RELVIEW_VIEW_TRANSLATOR_H_
