// ViewTranslator: the user-facing facade. Owns the schema (U, Sigma), a
// view X, a constant complement Y, and (optionally) a bound database
// instance. Implements the paper's full scenario: the user declares a view
// and a complement (validated for complementarity, Theorem 1), then issues
// view updates which are checked (Theorems 3, 8, 9) and — when
// translatable — applied to the underlying database as the unique
// constant-complement translation.

#ifndef RELVIEW_VIEW_TRANSLATOR_H_
#define RELVIEW_VIEW_TRANSLATOR_H_

#include <optional>

#include "deps/dep_set.h"
#include "relational/relation.h"
#include "relational/universe.h"
#include "util/status.h"
#include "view/complement.h"
#include "view/deletion.h"
#include "view/insertion.h"
#include "view/replacement.h"
#include "view/test2.h"

namespace relview {

class ViewTranslator {
 public:
  /// Validates that x and y are complementary under sigma (Theorem 1 /
  /// Theorem 10) and that sigma's FDs are canonical. The Universe is kept
  /// for diagnostics only.
  static Result<ViewTranslator> Create(Universe universe,
                                       DependencySet sigma, AttrSet x,
                                       AttrSet y);

  const Universe& universe() const { return universe_; }
  const DependencySet& sigma() const { return sigma_; }
  const AttrSet& view() const { return x_; }
  const AttrSet& complement() const { return y_; }

  /// Whether Y is a good complement (Test 2 precomputation; cached).
  bool complement_is_good() const { return good_.good; }
  const GoodComplementReport& good_report() const { return good_; }

  /// Binds the database instance the view is computed from. Must satisfy
  /// sigma.
  Status Bind(Relation database);
  bool bound() const { return database_.has_value(); }
  const Relation& database() const { return *database_; }

  /// Replaces the bound database without re-validating Sigma. For trusted
  /// callers (the service layer) installing a relation produced by the
  /// Apply* translations, which are legality-preserving by Theorems 3/8/9.
  void InstallDatabase(Relation database) { database_ = std::move(database); }

  /// pi_X of the bound database.
  Result<Relation> ViewInstance() const;

  /// Translatability checks against the current view instance.
  Result<InsertionReport> CanInsert(const Tuple& t) const;
  Result<DeletionReport> CanDelete(const Tuple& t) const;
  Result<ReplacementReport> CanReplace(const Tuple& t1,
                                       const Tuple& t2) const;

  /// Check-and-apply. Returns Untranslatable (with the verdict in the
  /// message) when the update is rejected; on success the bound database
  /// is updated in place and maps onto the updated view.
  Status Insert(const Tuple& t);
  Status Delete(const Tuple& t);
  Status Replace(const Tuple& t1, const Tuple& t2);

 private:
  ViewTranslator(Universe universe, DependencySet sigma, AttrSet x,
                 AttrSet y);

  Universe universe_;
  DependencySet sigma_;
  AttrSet x_;
  AttrSet y_;
  GoodComplementReport good_;
  std::optional<Relation> database_;
};

}  // namespace relview

#endif  // RELVIEW_VIEW_TRANSLATOR_H_
