// Translation of replacements under constant complement (Section 4.2,
// Theorem 9): replace t1 ∈ V by t2 ∉ V while keeping pi_Y(R) constant.
//
// Case 1 (t1[X∩Y] != t2[X∩Y]): behaves like a deletion of t1 plus an
// insertion of t2 — conditions (a)/(b) of both apply and the chase test
// runs for t2 against every view row other than t1.
//
// Case 2 (t1[X∩Y] == t2[X∩Y]): conditions (a)/(b) are vacuous (X∩Y need
// not be a superkey of Y; the affected complement rows are replaced as a
// set), and only the chase test remains. Because X∩Y -> Y is not
// guaranteed, distinct rows matching t2 on X∩Y may carry different
// complement parts, so the chase test quantifies over those mu rows too.
//
// The translation is T_u[R] = R − t1*pi_Y(R) ∪ t2*pi_Y(R).

#ifndef RELVIEW_VIEW_REPLACEMENT_H_
#define RELVIEW_VIEW_REPLACEMENT_H_

#include "chase/instance_chase.h"
#include "deps/closure_cache.h"
#include "deps/fd_set.h"
#include "relational/relation.h"
#include "util/status.h"
#include "view/insertion.h"

namespace relview {

struct ReplacementOptions {
  ChaseBackend backend = ChaseBackend::kHash;
  /// Shared closure memo for condition (b) and the chase test. Optional.
  ClosureCache* closure_cache = nullptr;
};

struct ReplacementReport {
  TranslationVerdict verdict = TranslationVerdict::kTranslatable;
  bool translatable() const {
    return verdict == TranslationVerdict::kTranslatable ||
           verdict == TranslationVerdict::kIdentity;
  }
  /// Which case of Theorem 9 applied (1 or 2).
  int theorem_case = 0;
  FD violated_fd;
  int witness_row = -1;
  /// Witness (and mu) row values at check time; see InsertionReport.
  Tuple witness_tuple;
  Tuple witness_mu_tuple;
  int chases_run = 0;
  /// Time spent applying the translation (ViewTranslator::ReplaceWithReport
  /// only; 0 for pure checks and rejected/identity updates).
  int64_t apply_nanos = 0;
};

/// Theorem 9 test. Requires t1 ∈ V and t2 ∉ V (otherwise degenerate
/// verdicts are returned: t1 == t2 or t2 ∈ V with t1 ∈ V reduce to
/// deletion semantics and are reported as such via InvalidArgument).
Result<ReplacementReport> CheckReplacement(
    const AttrSet& universe, const FDSet& fds, const AttrSet& x,
    const AttrSet& y, const Relation& v, const Tuple& t1, const Tuple& t2,
    const ReplacementOptions& opts = {});

/// Applies T_u[R] = R − t1*pi_Y(R) ∪ t2*pi_Y(R).
Result<Relation> ApplyReplacement(const AttrSet& universe, const AttrSet& x,
                                  const AttrSet& y, const Relation& r,
                                  const Tuple& t1, const Tuple& t2);

}  // namespace relview

#endif  // RELVIEW_VIEW_REPLACEMENT_H_
