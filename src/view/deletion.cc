#include "view/deletion.h"

namespace relview {

Result<DeletionReport> CheckDeletion(const AttrSet& universe,
                                     const FDSet& fds, const AttrSet& x,
                                     const AttrSet& y, const Relation& v,
                                     const Tuple& t,
                                     const DeletionOptions& opts) {
  if (!x.SubsetOf(universe) || (x | y) != universe) {
    return Status::InvalidArgument("bad view/complement pair");
  }
  if (v.attrs() != x || t.arity() != v.arity()) {
    return Status::InvalidArgument("tuple/view schema mismatch");
  }
  DeletionReport report;
  if (!v.ContainsRow(t)) {
    report.verdict = TranslationVerdict::kIdentity;
    return report;
  }
  const Schema& vs = v.schema();
  const AttrSet common = x & y;

  // Condition (a): some *other* row of V shares t's common part, so the
  // complement row t would otherwise delete survives.
  bool witness = false;
  for (const Tuple& r : v.rows()) {
    if (r != t && r.AgreesWith(t, vs, common)) {
      witness = true;
      break;
    }
  }
  if (!witness) {
    report.verdict = TranslationVerdict::kFailsComplementMembership;
    return report;
  }
  // Condition (b). Note: condition (a) already rules out X∩Y being a
  // superkey of X for legal V (two distinct rows agree on X∩Y), but the
  // schema-level check is part of the theorem and catches illegal V.
  const AttrSet common_closure = opts.closure_cache != nullptr
                                     ? opts.closure_cache->Closure(fds, common)
                                     : fds.Closure(common);
  if (x.SubsetOf(common_closure)) {
    report.verdict = TranslationVerdict::kFailsCommonPartKeyOfX;
    return report;
  }
  if (!y.SubsetOf(common_closure)) {
    report.verdict = TranslationVerdict::kFailsCommonPartNotKeyOfY;
    return report;
  }
  report.verdict = TranslationVerdict::kTranslatable;
  return report;
}

Result<Relation> ApplyDeletion(const AttrSet& universe, const AttrSet& x,
                               const AttrSet& y, const Relation& r,
                               const Tuple& t) {
  if (r.attrs() != universe || (x | y) != universe) {
    return Status::InvalidArgument("bad database/view arguments");
  }
  Relation tx(x);
  tx.AddRow(t);
  const Relation victims = Relation::NaturalJoin(tx, r.Project(y));
  return Relation::Difference(r, victims);
}

}  // namespace relview
