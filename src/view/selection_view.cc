#include "view/selection_view.h"

#include "deps/satisfies.h"
#include "view/complement.h"

namespace relview {

SelectionViewTranslator::SelectionViewTranslator(Universe universe,
                                                 DependencySet sigma,
                                                 AttrSet x, AttrSet y,
                                                 TuplePredicate p)
    : universe_(std::move(universe)),
      sigma_(std::move(sigma)),
      x_(x),
      y_(y),
      p_(std::move(p)),
      view_schema_(x) {}

Result<SelectionViewTranslator> SelectionViewTranslator::Create(
    Universe universe, DependencySet sigma, AttrSet x, AttrSet y,
    TuplePredicate p) {
  const AttrSet u = universe.All();
  if (!x.SubsetOf(u) || !y.SubsetOf(u)) {
    return Status::InvalidArgument("view/complement outside the universe");
  }
  if (!p.Attrs().SubsetOf(x)) {
    return Status::InvalidArgument(
        "selection predicate must mention only view attributes");
  }
  if (!AreComplementary(u, sigma, x, y)) {
    return Status::FailedPrecondition(
        "X and Y are not complementary under Sigma");
  }
  return SelectionViewTranslator(std::move(universe), std::move(sigma), x, y,
                                 std::move(p));
}

Status SelectionViewTranslator::Bind(Relation database) {
  if (database.attrs() != universe_.All()) {
    return Status::InvalidArgument("database must be over the universe");
  }
  if (!SatisfiesAll(database, sigma_)) {
    return Status::FailedPrecondition("database violates Sigma");
  }
  database.Normalize();
  database_ = std::move(database);
  return Status::OK();
}

Result<Relation> SelectionViewTranslator::ViewInstance() const {
  if (!database_) return Status::FailedPrecondition("no database bound");
  const Relation full = database_->Project(x_);
  return full.Select(
      [&](const Tuple& t) { return p_.Eval(t, view_schema_); });
}

Result<Relation> SelectionViewTranslator::HiddenRows() const {
  if (!database_) return Status::FailedPrecondition("no database bound");
  const Relation full = database_->Project(x_);
  return full.Select(
      [&](const Tuple& t) { return !p_.Eval(t, view_schema_); });
}

Status SelectionViewTranslator::CheckInsideP(const Tuple& t,
                                             const char* role) const {
  if (!p_.Eval(t, view_schema_)) {
    return Status::Untranslatable(
        std::string(role) +
        " lies outside the selection predicate: it belongs to the constant "
        "sigma_{¬P} complement component");
  }
  return Status::OK();
}

Result<InsertionReport> SelectionViewTranslator::CanInsert(
    const Tuple& t) const {
  if (!database_) return Status::FailedPrecondition("no database bound");
  RELVIEW_RETURN_IF_ERROR(CheckInsideP(t, "inserted tuple"));
  const Relation full = database_->Project(x_);
  return CheckInsertion(universe_.All(), sigma_.fds, x_, y_, full, t);
}

Result<DeletionReport> SelectionViewTranslator::CanDelete(
    const Tuple& t) const {
  if (!database_) return Status::FailedPrecondition("no database bound");
  RELVIEW_RETURN_IF_ERROR(CheckInsideP(t, "deleted tuple"));
  const Relation full = database_->Project(x_);
  return CheckDeletion(universe_.All(), sigma_.fds, x_, y_, full, t);
}

Status SelectionViewTranslator::Insert(const Tuple& t) {
  RELVIEW_ASSIGN_OR_RETURN(InsertionReport rep, CanInsert(t));
  if (!rep.translatable()) return Status::Untranslatable(rep.ToString());
  if (rep.verdict == TranslationVerdict::kIdentity) return Status::OK();
  RELVIEW_ASSIGN_OR_RETURN(
      Relation updated,
      ApplyInsertion(universe_.All(), x_, y_, *database_, t));
  database_ = std::move(updated);
  return Status::OK();
}

Status SelectionViewTranslator::Delete(const Tuple& t) {
  RELVIEW_ASSIGN_OR_RETURN(DeletionReport rep, CanDelete(t));
  if (!rep.translatable()) {
    return Status::Untranslatable(TranslationVerdictName(rep.verdict));
  }
  if (rep.verdict == TranslationVerdict::kIdentity) return Status::OK();
  RELVIEW_ASSIGN_OR_RETURN(
      Relation updated,
      ApplyDeletion(universe_.All(), x_, y_, *database_, t));
  database_ = std::move(updated);
  return Status::OK();
}

Status SelectionViewTranslator::Replace(const Tuple& t1, const Tuple& t2) {
  if (!database_) return Status::FailedPrecondition("no database bound");
  RELVIEW_RETURN_IF_ERROR(CheckInsideP(t1, "replaced tuple"));
  RELVIEW_RETURN_IF_ERROR(CheckInsideP(t2, "replacement tuple"));
  const Relation full = database_->Project(x_);
  RELVIEW_ASSIGN_OR_RETURN(
      ReplacementReport rep,
      CheckReplacement(universe_.All(), sigma_.fds, x_, y_, full, t1, t2));
  if (!rep.translatable()) {
    return Status::Untranslatable(TranslationVerdictName(rep.verdict));
  }
  if (rep.verdict == TranslationVerdict::kIdentity) return Status::OK();
  RELVIEW_ASSIGN_OR_RETURN(
      Relation updated,
      ApplyReplacement(universe_.All(), x_, y_, *database_, t1, t2));
  database_ = std::move(updated);
  return Status::OK();
}

}  // namespace relview
