// The generic instance underlying Theorem 3's test: the rows of a view
// instance V (over X) extended to the full universe with fresh labeled
// nulls in the complement-only columns Y − X. This is the paper's
// "fill the rows of V with new symbols in the columns of Y − X".
//
// Each (row, column) cell gets a deterministic null id so that callers can
// refer to cells of the *original* V rows even after the chase merges
// values: combine GenericInstance::NullAt with ChaseOutcome::Resolve.

#ifndef RELVIEW_VIEW_GENERIC_INSTANCE_H_
#define RELVIEW_VIEW_GENERIC_INSTANCE_H_

#include <vector>

#include "relational/relation.h"

namespace relview {

class GenericInstance {
 public:
  /// Builds the extension of `v` (an instance of the view `x`) to
  /// `universe`, with fresh nulls on universe − x.
  static GenericInstance Build(const AttrSet& universe, const AttrSet& x,
                               const Relation& v);

  const Relation& relation() const { return rel_; }
  const AttrSet& null_cols() const { return null_cols_; }

  /// Size of each row's null-id block (= |universe − x|).
  int width() const { return width_; }
  /// AttrId -> offset within a row's null block (-1 outside universe − x).
  const std::vector<int>& offsets() const { return offsets_; }

  /// The initial null placed at (row of V, attribute a). Precondition: a is
  /// in universe − x.
  Value NullAt(int vrow, AttrId a) const {
    const int off = offsets_[a];
    return Value::Null(static_cast<uint32_t>(vrow) *
                           static_cast<uint32_t>(width_) +
                       static_cast<uint32_t>(off));
  }

 private:
  Relation rel_;
  AttrSet null_cols_;
  int width_ = 0;
  std::vector<int> offsets_;  // AttrId -> offset within a row's null block
};

}  // namespace relview

#endif  // RELVIEW_VIEW_GENERIC_INSTANCE_H_
