// Finding a complement that renders a given insertion translatable
// (Section 3.3, Theorems 6 and 7).
//
// If the insertion of t into V is translatable under SOME constant
// complement Y = W ∪ (U − X) (W ⊆ X), then it is translatable under
// Y_r = W_r ∪ (U − X) for some view row r, where
//   W_r = {A ∈ X : r[A] = t[A]}.
// So at most min(|V|, 2^|X|) translatability tests are needed (Theorem 6);
// under succinct view encodings the problem is NP-hard (Theorem 7).

#ifndef RELVIEW_VIEW_FIND_COMPLEMENT_H_
#define RELVIEW_VIEW_FIND_COMPLEMENT_H_

#include <vector>

#include "deps/fd_set.h"
#include "relational/relation.h"
#include "util/status.h"
#include "view/insertion.h"
#include "view/test1.h"

namespace relview {

/// Which translatability test drives the search (the paper remarks that
/// Theorem 6 also holds with Test 1 / Test 2 in place of the exact test).
enum class FindComplementTest { kExact, kTest1 };

struct FindComplementResult {
  bool found = false;
  AttrSet complement;
  /// Distinct W_r candidates examined and translatability tests run.
  int candidates = 0;
  int tests_run = 0;
};

/// Theorem 6's search. `partial_restriction`, when nonempty, restricts the
/// acceptable complements to those containing it (the user's "partial
/// restriction on the complement").
Result<FindComplementResult> FindTranslatingComplement(
    const AttrSet& universe, const FDSet& fds, const AttrSet& x,
    const Relation& v, const Tuple& t,
    FindComplementTest test = FindComplementTest::kExact,
    const AttrSet& partial_restriction = AttrSet());

}  // namespace relview

#endif  // RELVIEW_VIEW_FIND_COMPLEMENT_H_
