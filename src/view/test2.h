// Test 2 (Section 3.1): the "good complement" machinery.
//
// Y is a *good* complement of X when, for any two legal databases R1, R2
// that agree on the view (pi_X(R1) = pi_X(R2)) and both contain the
// complement row matched by the inserted tuple, the translated insertion
// T_u is legal on R1 iff it is legal on R2. For a good complement,
// translatability can be decided by materializing ONE canonical database
// R0 (the chased null-filled view) and checking T_u[R0] |= Sigma directly:
// O(|V|^2 log |V|) for the single chase plus O(|V| |Sigma|) for the scan.
//
// Goodness is a property of the schema (X, Y, Sigma) alone. The paper
// shows a counterexample needs only two-tuple relations and checks for one
// with a 3-symbol tableau fixpoint in O(|Sigma|^2 |U|). We implement that
// fixpoint as a per-column union-find over the four cell objects
//   t̂ (inserted tuple), nu (the complement-matching row, shared between
//   R1 and R2 per the paper's initialization nu2 = nu1, t̂2 = t̂1),
//   mu1 (the violating row of R1), mu2 (its X-equal image in R2),
// deriving equalities from R1 |= Sigma (pair mu1-nu) and T_u[R2] |= Sigma
// (pairs mu2-nu, nu-t̂, mu2-t̂). Y is good for FD Z -> A iff the fixpoint
// forces mu1[A] = t̂[A].
//
// Two initializations are provided (see DESIGN.md interpretation notes):
//  * kSemantic  — mu1 ~ mu2 on X (the linkage the theorem's derivation
//    uses: pi_X(R1) = pi_X(R2)). Default.
//  * kPaperLiteral — mu1 ~ mu2 on U − Z (the literal a2-symbol sharing of
//    the paper's initialization).
// Divergence, when it occurs, errs toward declaring Y "not good", which
// merely disables Test 2 — never an unsound acceptance.

#ifndef RELVIEW_VIEW_TEST2_H_
#define RELVIEW_VIEW_TEST2_H_

#include "chase/instance_chase.h"
#include "deps/fd_set.h"
#include "relational/relation.h"
#include "util/status.h"
#include "view/insertion.h"

namespace relview {

enum class GoodComplementMode { kSemantic, kPaperLiteral };

struct GoodComplementReport {
  bool good = true;
  /// When !good: the FD whose two-tuple counterexample tableau survived.
  FD counterexample_fd;
  int fixpoint_rounds = 0;
};

/// The O(|Sigma|^2 |U|) schema-level check.
GoodComplementReport CheckGoodComplement(
    const AttrSet& universe, const FDSet& fds, const AttrSet& x,
    const AttrSet& y, GoodComplementMode mode = GoodComplementMode::kSemantic);

struct Test2Report {
  TranslationVerdict verdict = TranslationVerdict::kTranslatable;
  bool accepted() const {
    return verdict == TranslationVerdict::kTranslatable ||
           verdict == TranslationVerdict::kIdentity;
  }
  FD violated_fd;
  int witness_row = -1;
  ChaseStats stats;
};

/// The fast per-insertion test: builds the canonical R0 by chasing the
/// null-filled view and checks T_u[R0] |= Sigma. Exact when
/// CheckGoodComplement(...).good; callers should verify goodness once at
/// complement-declaration time and disregard Test 2 otherwise.
Result<Test2Report> RunTest2(const AttrSet& universe, const FDSet& fds,
                             const AttrSet& x, const AttrSet& y,
                             const Relation& v, const Tuple& t,
                             ChaseBackend backend = ChaseBackend::kHash);

}  // namespace relview

#endif  // RELVIEW_VIEW_TEST2_H_
