// Selection views (the paper's Section 6, direction (2)): views of the
// form sigma_P(pi_X(R)) where P is a predicate on view tuples — "most of
// the views occurring in practice are actually of the above form". The
// complement is the pair (sigma_{¬P} pi_X(R), pi_Y(R)) suggested by the
// paper: the invisible part of the X-projection plus an ordinary
// projection complement of X.
//
// With FD-only Sigma the paper conjectures the basic approach works "with
// only simple modifications (at least for certain Ps)"; we implement it
// for conjunctive equality/inequality predicates:
//   * a view update must stay inside P (tuples outside P belong to the
//     constant component sigma_{¬P} pi_X and may not be touched);
//   * with that guarantee, translating against the FULL projection
//     instance V = sigma_P-part ∪ sigma_{¬P}-part under constant pi_Y is
//     exactly Theorem 3/8/9, and both complement components stay
//     constant.

#ifndef RELVIEW_VIEW_SELECTION_VIEW_H_
#define RELVIEW_VIEW_SELECTION_VIEW_H_

#include <optional>
#include <string>
#include <vector>

#include "deps/dep_set.h"
#include "relational/relation.h"
#include "relational/universe.h"
#include "util/status.h"
#include "view/deletion.h"
#include "view/insertion.h"
#include "view/replacement.h"

namespace relview {

/// A conjunction of (attr == value) and (attr != value) atoms over view
/// attributes.
class TuplePredicate {
 public:
  TuplePredicate() = default;

  void AddEquals(AttrId attr, Value v) { atoms_.push_back({attr, v, true}); }
  void AddNotEquals(AttrId attr, Value v) {
    atoms_.push_back({attr, v, false});
  }

  bool Eval(const Tuple& t, const Schema& s) const {
    for (const Atom& a : atoms_) {
      const bool eq = t.At(s, a.attr) == a.value;
      if (eq != a.want_equal) return false;
    }
    return true;
  }

  /// Attributes the predicate mentions.
  AttrSet Attrs() const {
    AttrSet out;
    for (const Atom& a : atoms_) out.Add(a.attr);
    return out;
  }

  bool empty() const { return atoms_.empty(); }

 private:
  struct Atom {
    AttrId attr;
    Value value;
    bool want_equal;
  };
  std::vector<Atom> atoms_;
};

/// Translator for the view sigma_P(pi_X(R)) under the constant complement
/// pair (sigma_{¬P} pi_X(R), pi_Y(R)).
class SelectionViewTranslator {
 public:
  /// Validates that X, Y are complementary (Theorem 1) and that P only
  /// mentions attributes of X.
  static Result<SelectionViewTranslator> Create(Universe universe,
                                                DependencySet sigma,
                                                AttrSet x, AttrSet y,
                                                TuplePredicate p);

  Status Bind(Relation database);
  const Relation& database() const { return *database_; }
  const Universe& universe() const { return universe_; }

  /// What the user sees: sigma_P(pi_X(R)).
  Result<Relation> ViewInstance() const;
  /// The constant first complement component: sigma_{¬P}(pi_X(R)).
  Result<Relation> HiddenRows() const;

  /// Check-and-apply updates on the selection view. A tuple outside P is
  /// rejected (it would alter the sigma_{¬P} component), then Theorems
  /// 3/8/9 decide against the full projection instance.
  Status Insert(const Tuple& t);
  Status Delete(const Tuple& t);
  Status Replace(const Tuple& t1, const Tuple& t2);

  /// Dry-run variants.
  Result<InsertionReport> CanInsert(const Tuple& t) const;
  Result<DeletionReport> CanDelete(const Tuple& t) const;

 private:
  SelectionViewTranslator(Universe universe, DependencySet sigma, AttrSet x,
                          AttrSet y, TuplePredicate p);

  Status CheckInsideP(const Tuple& t, const char* role) const;

  Universe universe_;
  DependencySet sigma_;
  AttrSet x_, y_;
  TuplePredicate p_;
  Schema view_schema_;
  std::optional<Relation> database_;
};

}  // namespace relview

#endif  // RELVIEW_VIEW_SELECTION_VIEW_H_
