// Translation of insertions under constant complement (Section 3.1,
// Theorem 3 and its Corollary).
//
// Given the schema (U, Sigma) with Sigma a set of canonical FDs, the view
// X, the constant complement Y, the current view instance V = pi_X(R) and a
// tuple t over X, the insertion of t into V is translatable iff
//   (a) t[X∩Y] ∈ pi_{X∩Y}(V);
//   (b) Sigma |= X∩Y -> Y and Sigma |/= X∩Y -> X;
//   (c) for every FD f = Z -> A in Sigma and every tuple r of V with
//       r[Z∩X] = t[Z∩X] (and r[A] != t[A] when A ∈ X), the chase of the
//       generic instance R(V, t, r, f) "succeeds": it either derives a
//       contradiction (equates two distinct constants of V) or forces
//       r[A] = mu[A] (when A ∈ Y−X, mu being a row matching t on X∩Y) —
//       i.e. no legal database compatible with V lets the inserted tuple
//       violate f via r.
// When translatable, the unique translation is T_u[R] = R ∪ t*pi_Y(R).

#ifndef RELVIEW_VIEW_INSERTION_H_
#define RELVIEW_VIEW_INSERTION_H_

#include <string>

#include "chase/instance_chase.h"
#include "deps/closure_cache.h"
#include "deps/fd_set.h"
#include "relational/relation.h"
#include "util/status.h"

namespace relview {

/// Why a view update is (or is not) translatable.
enum class TranslationVerdict {
  kTranslatable,
  /// The update leaves the view unchanged; translation is the identity.
  kIdentity,
  /// Condition (a) failed: the complement would have to grow.
  kFailsComplementMembership,
  /// Condition (b) failed: X∩Y is not a superkey of Y under Sigma.
  kFailsCommonPartNotKeyOfY,
  /// Condition (b) failed: X∩Y is a superkey of X, so V ∪ t (or V − t)
  /// cannot be the projection of a legal instance.
  kFailsCommonPartKeyOfX,
  /// Condition (c) failed: some legal database compatible with V would
  /// become illegal (details in the report).
  kFailsChase,
};

const char* TranslationVerdictName(TranslationVerdict v);

/// Which of the paper's conditions the verdict violates: 'a' (complement
/// membership), 'b' (key structure of X∩Y), 'c' (chase counterexample),
/// or '-' for accepted verdicts. Provenance vocabulary (obs/provenance.h).
char FailingCondition(TranslationVerdict v);

struct InsertionOptions {
  ChaseBackend backend = ChaseBackend::kHash;
  /// The paper's "straightforward shortcut": chase the null-filled V once,
  /// then re-chase only the per-(r, f) constraint deltas. Off reproduces
  /// the Corollary's from-scratch O(|V|^3 log |V|) behaviour.
  bool reuse_base_chase = true;
  /// Shared closure memo for condition (b) and the chase test. Optional.
  ClosureCache* closure_cache = nullptr;
};

struct InsertionReport {
  TranslationVerdict verdict = TranslationVerdict::kTranslatable;
  bool translatable() const {
    return verdict == TranslationVerdict::kTranslatable ||
           verdict == TranslationVerdict::kIdentity;
  }
  /// For kFailsChase: the FD and V-row witnessing the counterexample.
  FD violated_fd;
  int witness_row = -1;
  /// The witness row's value (and the mu row's, when the probe carried
  /// one) at check time — provenance that survives later view edits.
  /// Empty tuples when the verdict is not kFailsChase.
  Tuple witness_tuple;
  Tuple witness_mu_tuple;
  /// Effort accounting (benchmarks).
  int chases_run = 0;
  ChaseStats stats;
  /// Time spent applying the translation (ViewTranslator::InsertWithReport
  /// only; 0 for pure checks and rejected/identity updates).
  int64_t apply_nanos = 0;
  std::string ToString() const;
};

/// Theorem 3 translatability test. `v` must be an instance over x; `t` a
/// tuple over x's schema. Requires x ∪ y == universe.
Result<InsertionReport> CheckInsertion(const AttrSet& universe,
                                       const FDSet& fds, const AttrSet& x,
                                       const AttrSet& y, const Relation& v,
                                       const Tuple& t,
                                       const InsertionOptions& opts = {});

/// Applies the unique translation T_u[R] = R ∪ t*pi_Y(R) to a materialized
/// database instance r (whose X-projection is the view the user sees).
/// Does not re-run the translatability test; callers normally run
/// CheckInsertion against pi_X(r) first.
Result<Relation> ApplyInsertion(const AttrSet& universe, const AttrSet& x,
                                const AttrSet& y, const Relation& r,
                                const Tuple& t);

}  // namespace relview

#endif  // RELVIEW_VIEW_INSERTION_H_
