#include "view/chase_test.h"

#include "view/generic_instance.h"

namespace relview {

namespace {

/// One (f, r, mu) probe in reuse mode: impose r ~ mu on Z∩(Y−X) atop the
/// base fixpoint, re-chase, and evaluate the success criterion.
bool ProbeReuse(const GenericInstance& generic, const ChaseOutcome& base,
                const FDSet& fds, const FD& fd, bool rhs_in_x,
                const AttrSet& zy, int r, int mu, ChaseBackend backend,
                ChaseTestResult* acc) {
  // Collect the hypothesis renames against the base fixpoint first; the
  // (expensive) relation copy happens only when a rename is really needed.
  bool contradiction = false;
  std::vector<std::pair<Value, Value>> manual;
  zy.ForEach([&](AttrId w) {
    if (contradiction) return;
    Value a = base.Resolve(generic.NullAt(r, w));
    Value b = base.Resolve(generic.NullAt(mu, w));
    for (const auto& [from, to] : manual) {
      if (a == from) a = to;
      if (b == from) b = to;
    }
    if (a == b) return;
    if (a.is_const() && b.is_const()) {
      contradiction = true;  // hypothesis impossible: chase "succeeds"
      return;
    }
    Value from, to;
    if (a.is_null() && (b.is_const() || b.raw() < a.raw())) {
      from = a;
      to = b;
    } else {
      from = b;
      to = a;
    }
    manual.emplace_back(from, to);
  });
  if (contradiction) return true;

  ChaseOutcome delta;
  if (!manual.empty()) {
    Relation working = base.result;
    for (const auto& [from, to] : manual) working.RenameValue(from, to);
    delta = ChaseInstance(working, fds, backend);
    ++acc->chases_run;
    acc->stats.merges += delta.stats.merges;
    acc->stats.rounds += delta.stats.rounds;
    acc->stats.work += delta.stats.work;
    if (delta.conflict) return true;
  }
  if (rhs_in_x) {
    // Constants r[A] != t[A] stay distinct: fixpoint without conflict is a
    // counterexample.
    return false;
  }
  auto resolve_all = [&](Value val) {
    val = base.Resolve(val);
    for (const auto& [from, to] : manual) {
      if (val == from) val = to;
    }
    return delta.Resolve(val);
  };
  return resolve_all(generic.NullAt(r, fd.rhs)) ==
         resolve_all(generic.NullAt(mu, fd.rhs));
}

/// One (f, r, mu) probe in from-scratch mode (the Corollary's algorithm).
bool ProbeScratch(const GenericInstance& generic, const FDSet& fds,
                  const FD& fd, bool rhs_in_x, const AttrSet& zy, int r,
                  int mu, ChaseBackend backend, ChaseTestResult* acc) {
  Relation working = generic.relation();
  zy.ForEach([&](AttrId w) {
    const Value a = generic.NullAt(r, w);
    const Value b = generic.NullAt(mu, w);
    if (a != b) working.RenameValue(a, b);
  });
  ChaseOutcome out = ChaseInstance(working, fds, backend);
  ++acc->chases_run;
  acc->stats.merges += out.stats.merges;
  acc->stats.rounds += out.stats.rounds;
  acc->stats.work += out.stats.work;
  if (out.conflict) return true;
  if (rhs_in_x) return false;
  return out.Resolve(generic.NullAt(r, fd.rhs)) ==
         out.Resolve(generic.NullAt(mu, fd.rhs));
}

}  // namespace

ChaseTestResult RunConditionC(const AttrSet& universe, const FDSet& fds,
                              const AttrSet& x, const AttrSet& y,
                              const Relation& v, const Tuple& t,
                              const std::vector<int>& mu_rows,
                              const ChaseTestOptions& opts) {
  ChaseTestResult result;
  const Schema& vs = v.schema();
  const AttrSet y_only = y - x;
  const GenericInstance generic = GenericInstance::Build(universe, x, v);

  ChaseOutcome base;
  if (opts.reuse_base_chase) {
    base = ChaseInstance(generic.relation(), fds, opts.backend);
    ++result.chases_run;
    result.stats.merges += base.stats.merges;
    result.stats.rounds += base.stats.rounds;
    result.stats.work += base.stats.work;
    if (base.conflict) {
      // No legal database projects onto V at all: condition (c) holds
      // vacuously.
      return result;
    }
  }

  std::vector<int> mus;
  if (opts.iterate_all_mus) {
    mus = mu_rows;
  } else {
    mus.push_back(mu_rows.front());
  }

  for (const FD& fd : fds.fds()) {
    const AttrSet zx = fd.lhs & x;
    const AttrSet zy = fd.lhs & y_only;
    const bool rhs_in_x = x.Contains(fd.rhs);

    for (int r = 0; r < v.size(); ++r) {
      if (r == opts.skip_row) continue;
      const Tuple& vr = v.row(r);
      if (!vr.AgreesWith(t, vs, zx)) continue;
      if (rhs_in_x && vr.At(vs, fd.rhs) == t.At(vs, fd.rhs)) continue;

      for (int mu : mus) {
        const bool success =
            opts.reuse_base_chase
                ? ProbeReuse(generic, base, fds, fd, rhs_in_x, zy, r, mu,
                             opts.backend, &result)
                : ProbeScratch(generic, fds, fd, rhs_in_x, zy, r, mu,
                               opts.backend, &result);
        if (!success) {
          result.ok = false;
          result.violated_fd = fd;
          result.witness_row = r;
          result.witness_mu = mu;
          return result;
        }
      }
    }
  }
  return result;
}

}  // namespace relview
