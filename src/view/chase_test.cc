#include "view/chase_test.h"

#include <atomic>
#include <optional>

#include "obs/trace.h"
#include "util/annotations.h"
#include "view/generic_instance.h"

namespace relview {

namespace {

Value ResolveChain(const std::unordered_map<uint32_t, Value>& renames,
                   Value v) {
  auto it = renames.find(v.raw());
  while (it != renames.end()) {
    v = it->second;
    it = renames.find(v.raw());
  }
  return v;
}

/// One (f, r, mu) probe in reuse mode: impose r ~ mu on Z∩(Y−X) atop the
/// base fixpoint, re-chase, and evaluate the success criterion.
bool ProbeReuse(const BaseChaseView& base, const FDSet& fds, const FD& fd,
                bool rhs_in_x, const AttrSet& zy, uint32_t r_base,
                uint32_t mu_base, const std::vector<int>& offsets,
                ChaseBackend backend, ChaseTestResult* acc) {
  // Collect the hypothesis renames against the base fixpoint first; the
  // (expensive) relation copy happens only when a rename is really needed.
  bool contradiction = false;
  std::vector<std::pair<Value, Value>> manual;
  zy.ForEach([&](AttrId w) {
    if (contradiction) return;
    const uint32_t off = static_cast<uint32_t>(offsets[w]);
    Value a = ResolveChain(*base.renames, Value::Null(r_base + off));
    Value b = ResolveChain(*base.renames, Value::Null(mu_base + off));
    for (const auto& [from, to] : manual) {
      if (a == from) a = to;
      if (b == from) b = to;
    }
    if (a == b) return;
    if (a.is_const() && b.is_const()) {
      contradiction = true;  // hypothesis impossible: chase "succeeds"
      return;
    }
    Value from, to;
    if (a.is_null() && (b.is_const() || b.raw() < a.raw())) {
      from = a;
      to = b;
    } else {
      from = b;
      to = a;
    }
    manual.emplace_back(from, to);
  });
  if (contradiction) return true;

  ChaseOutcome delta;
  if (!manual.empty()) {
    Relation working = *base.fixpoint;
    for (const auto& [from, to] : manual) working.RenameValue(from, to);
    delta = ChaseInstance(working, fds, backend);
    ++acc->chases_run;
    acc->stats.merges += delta.stats.merges;
    acc->stats.rounds += delta.stats.rounds;
    acc->stats.work += delta.stats.work;
    if (delta.conflict) return true;
  }
  if (rhs_in_x) {
    // Constants r[A] != t[A] stay distinct: fixpoint without conflict is a
    // counterexample.
    return false;
  }
  const uint32_t rhs_off = static_cast<uint32_t>(offsets[fd.rhs]);
  auto resolve_all = [&](Value val) {
    val = ResolveChain(*base.renames, val);
    for (const auto& [from, to] : manual) {
      if (val == from) val = to;
    }
    return delta.Resolve(val);
  };
  return resolve_all(Value::Null(r_base + rhs_off)) ==
         resolve_all(Value::Null(mu_base + rhs_off));
}

/// One (f, r, mu) probe in columnar reuse mode: the delta kernel. No copy
/// of the fixpoint is made — the hypothesis pairs are fed to a
/// ProbeDeltaChaser over the shared CodeProbeIndex, which rescans only
/// rows whose value resolutions the hypothesis actually changes.
bool ProbeReuseColumnar(const BaseChaseView& base, const FD& fd,
                        bool rhs_in_x, const AttrSet& zy, uint32_t r_base,
                        uint32_t mu_base, const std::vector<int>& offsets,
                        ProbeDeltaChaser* chaser, ChaseTestResult* acc) {
  std::vector<std::pair<uint32_t, uint32_t>> seeds;
  zy.ForEach([&](AttrId w) {
    const uint32_t off = static_cast<uint32_t>(offsets[w]);
    const Value a = ResolveChain(*base.renames, Value::Null(r_base + off));
    const Value b = ResolveChain(*base.renames, Value::Null(mu_base + off));
    if (a != b) seeds.emplace_back(a.raw(), b.raw());
  });
  bool chased = false;
  const bool conflict = chaser->Chase(seeds, &acc->stats, &chased);
  if (chased) ++acc->chases_run;
  if (conflict) return true;  // hypothesis impossible: chase "succeeds"
  if (rhs_in_x) return false;
  const uint32_t rhs_off = static_cast<uint32_t>(offsets[fd.rhs]);
  const Value ra = ResolveChain(*base.renames, Value::Null(r_base + rhs_off));
  const Value rb =
      ResolveChain(*base.renames, Value::Null(mu_base + rhs_off));
  return chaser->Resolve(ra.raw()) == chaser->Resolve(rb.raw());
}

/// One (f, r, mu) probe in from-scratch mode (the Corollary's algorithm).
bool ProbeScratch(const Relation& generic, const FDSet& fds, const FD& fd,
                  bool rhs_in_x, const AttrSet& zy, uint32_t r_base,
                  uint32_t mu_base, const std::vector<int>& offsets,
                  ChaseBackend backend, ChaseTestResult* acc) {
  Relation working = generic;
  zy.ForEach([&](AttrId w) {
    const uint32_t off = static_cast<uint32_t>(offsets[w]);
    const Value a = Value::Null(r_base + off);
    const Value b = Value::Null(mu_base + off);
    if (a != b) working.RenameValue(a, b);
  });
  ChaseOutcome out = ChaseInstance(working, fds, backend);
  ++acc->chases_run;
  acc->stats.merges += out.stats.merges;
  acc->stats.rounds += out.stats.rounds;
  acc->stats.work += out.stats.work;
  if (out.conflict) return true;
  if (rhs_in_x) return false;
  const uint32_t rhs_off = static_cast<uint32_t>(offsets[fd.rhs]);
  return out.Resolve(Value::Null(r_base + rhs_off)) ==
         out.Resolve(Value::Null(mu_base + rhs_off));
}

struct ProbeContext {
  const FDSet& fds;
  const AttrSet& x;
  const AttrSet& y_only;
  const BaseChaseView& base;
  const Relation* generic;
  const std::vector<int>& offsets;
  const ChaseTestOptions& opts;
  /// Non-null in columnar reuse mode; each worker pairs it with its own
  /// ProbeDeltaChaser.
  const CodeProbeIndex* probe_index = nullptr;
};

bool RunOneProbe(const ProbeContext& ctx, const ProbeSpec& spec,
                 ProbeDeltaChaser* chaser, ChaseTestResult* acc) {
  const FD& fd = ctx.fds.fds()[spec.fd_index];
  const bool rhs_in_x = ctx.x.Contains(fd.rhs);
  ++acc->probes_run;
  if (ctx.opts.pair_screen &&
      PairScreenSucceeds(ctx.fds, fd, rhs_in_x, ctx.x, ctx.y_only,
                         spec.x_agree, ctx.opts.closure_cache)) {
    ++acc->probes_screened;
    return true;
  }
  const AttrSet zy = fd.lhs & ctx.y_only;
  if (ctx.base.fixpoint != nullptr && chaser != nullptr) {
    return ProbeReuseColumnar(ctx.base, fd, rhs_in_x, zy, spec.r_null_base,
                              spec.mu_null_base, ctx.offsets, chaser, acc);
  }
  return ctx.base.fixpoint != nullptr
             ? ProbeReuse(ctx.base, ctx.fds, fd, rhs_in_x, zy,
                          spec.r_null_base, spec.mu_null_base, ctx.offsets,
                          ctx.opts.backend, acc)
             : ProbeScratch(*ctx.generic, ctx.fds, fd, rhs_in_x, zy,
                            spec.r_null_base, spec.mu_null_base, ctx.offsets,
                            ctx.opts.backend, acc);
}

void MergeAccounting(const ChaseTestResult& from, ChaseTestResult* into) {
  into->chases_run += from.chases_run;
  into->probes_run += from.probes_run;
  into->probes_screened += from.probes_screened;
  into->probes_parallel += from.probes_parallel;
  into->stats.merges += from.stats.merges;
  into->stats.rounds += from.stats.rounds;
  into->stats.work += from.stats.work;
}

int RunProbeSpecsParallel(const std::vector<ProbeSpec>& specs,
                          const ProbeContext& ctx, ChaseTestResult* acc) {
  ThreadPool* pool = ctx.opts.pool;
  const size_t n = specs.size();
  // Running minimum over failing spec indexes. Every index below the final
  // minimum is guaranteed to have been claimed and probed (a spec is only
  // skipped when an even lower failure already exists), so the result is
  // exactly the sequential first failure regardless of thread timing.
  std::atomic<size_t> first_fail{n};
  std::atomic<size_t> next{0};
  Mutex acc_mu;
  const int workers = pool->size();
  for (int w = 0; w < workers; ++w) {
    pool->Submit([&] {
      ChaseTestResult local;
      // Per-worker delta chaser: scratch state is reused across this
      // worker's probes, while the index itself is shared read-only.
      std::optional<ProbeDeltaChaser> chaser;
      if (ctx.probe_index != nullptr) chaser.emplace(ctx.probe_index);
      for (;;) {
        const size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= n || i >= first_fail.load(std::memory_order_acquire)) break;
        ++local.probes_parallel;
        if (!RunOneProbe(ctx, specs[i], chaser ? &*chaser : nullptr,
                         &local)) {
          size_t cur = first_fail.load(std::memory_order_relaxed);
          while (i < cur && !first_fail.compare_exchange_weak(
                                cur, i, std::memory_order_release)) {
          }
        }
      }
      MutexLock lock(acc_mu);
      MergeAccounting(local, acc);
    });
  }
  pool->Wait();
  const size_t fail = first_fail.load(std::memory_order_acquire);
  return fail == n ? -1 : static_cast<int>(fail);
}

}  // namespace

bool PairScreenSucceeds(const FDSet& fds, const FD& fd, bool rhs_in_x,
                        const AttrSet& x, const AttrSet& y_only,
                        const AttrSet& x_agree, ClosureCache* cache) {
  const AttrSet seed = x_agree | (fd.lhs & y_only);
  const AttrSet closure = cache ? cache->Closure(fds, seed)
                                : fds.Closure(seed);
  // "Attempts to equate two distinct elements of V": the closure forces
  // agreement on an X attribute where the constants differ.
  if (!(closure & x).SubsetOf(x_agree)) return true;
  // "Equates r[A], mu[A]" (A in Y−X).
  if (!rhs_in_x && closure.Contains(fd.rhs)) return true;
  return false;
}

int RunProbeSpecs(const std::vector<ProbeSpec>& specs, const FDSet& fds,
                  const AttrSet& x, const AttrSet& y_only,
                  const BaseChaseView& base, const Relation* generic,
                  const std::vector<int>& null_offsets,
                  const ChaseTestOptions& opts, ChaseTestResult* acc) {
  RELVIEW_TRACE_SPAN_N(span, "chase.run_probe_specs");
  span.AddArg("specs", specs.size());
  // Columnar reuse mode: freeze the fixpoint into a probe index once for
  // the whole spec list (engine callers pass a cached one via opts).
  const CodeProbeIndex* pidx = nullptr;
  std::optional<CodeProbeIndex> local_index;
  if (base.fixpoint != nullptr && !specs.empty() &&
      opts.backend == ChaseBackend::kColumnar) {
    if (opts.probe_index != nullptr) {
      pidx = opts.probe_index;
    } else {
      local_index.emplace(CodeProbeIndex::Build(*base.fixpoint, fds));
      pidx = &*local_index;
    }
  }
  const ProbeContext ctx{fds,     x,            y_only, base,
                         generic, null_offsets, opts,   pidx};
  if (opts.pool != nullptr && specs.size() > 1) {
    return RunProbeSpecsParallel(specs, ctx, acc);
  }
  std::optional<ProbeDeltaChaser> chaser;
  if (pidx != nullptr) chaser.emplace(pidx);
  for (size_t i = 0; i < specs.size(); ++i) {
    if (!RunOneProbe(ctx, specs[i], chaser ? &*chaser : nullptr, acc)) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

ChaseTestResult RunConditionC(const AttrSet& universe, const FDSet& fds,
                              const AttrSet& x, const AttrSet& y,
                              const Relation& v, const Tuple& t,
                              const std::vector<int>& mu_rows,
                              const ChaseTestOptions& opts) {
  RELVIEW_TRACE_SPAN_N(span, "chase.condition_c");
  span.AddArg("view_rows", static_cast<uint64_t>(v.size()));
  ChaseTestResult result;
  const Schema& vs = v.schema();
  const AttrSet y_only = y - x;
  const GenericInstance generic = GenericInstance::Build(universe, x, v);

  ChaseOutcome base_outcome;
  BaseChaseView base;
  if (opts.reuse_base_chase) {
    base_outcome = ChaseInstance(generic.relation(), fds, opts.backend);
    ++result.chases_run;
    result.stats.merges += base_outcome.stats.merges;
    result.stats.rounds += base_outcome.stats.rounds;
    result.stats.work += base_outcome.stats.work;
    if (base_outcome.conflict) {
      // No legal database projects onto V at all: condition (c) holds
      // vacuously.
      return result;
    }
    base.fixpoint = &base_outcome.result;
    base.renames = &base_outcome.renames;
  }

  std::vector<int> mus;
  if (opts.iterate_all_mus) {
    mus = mu_rows;
  } else {
    mus.push_back(mu_rows.front());
  }

  const uint32_t width = static_cast<uint32_t>(generic.width());
  std::vector<ProbeSpec> specs;
  for (int fi = 0; fi < fds.size(); ++fi) {
    const FD& fd = fds.fds()[fi];
    const AttrSet zx = fd.lhs & x;
    const bool rhs_in_x = x.Contains(fd.rhs);

    for (int r = 0; r < v.size(); ++r) {
      if (r == opts.skip_row) continue;
      const Tuple& vr = v.row(r);
      if (!vr.AgreesWith(t, vs, zx)) continue;
      if (rhs_in_x && vr.At(vs, fd.rhs) == t.At(vs, fd.rhs)) continue;

      for (int mu : mus) {
        ProbeSpec spec;
        spec.fd_index = fi;
        spec.r = r;
        spec.mu = mu;
        spec.r_null_base = static_cast<uint32_t>(r) * width;
        spec.mu_null_base = static_cast<uint32_t>(mu) * width;
        if (opts.pair_screen) {
          const Tuple& vmu = v.row(mu);
          x.ForEach([&](AttrId a) {
            if (vr.At(vs, a) == vmu.At(vs, a)) spec.x_agree.Add(a);
          });
        }
        specs.push_back(spec);
      }
    }
  }

  const int fail = RunProbeSpecs(specs, fds, x, y_only, base,
                                 &generic.relation(), generic.offsets(),
                                 opts, &result);
  if (fail >= 0) {
    result.ok = false;
    result.violated_fd = fds.fds()[specs[fail].fd_index];
    result.witness_row = specs[fail].r;
    result.witness_mu = specs[fail].mu;
  }
  return result;
}

}  // namespace relview
