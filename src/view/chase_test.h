// Internal engine for condition (c) of Theorems 3 and 9: the chase-based
// counterexample search over the generic instance R(V, t, r, f). Shared by
// the insertion and replacement translators and by the incremental
// translatability engine (view_index.h).
//
// The search is a flat list of independent (f, r, mu) probes; each probe
// imposes the hypothesis r ~ mu on Z∩(Y−X), chases, and checks the
// paper's success criterion. RunProbeSpecs exposes that list directly so
// that
//   * the incremental engine can enumerate candidates from its indexes
//     (output-sensitive) instead of scanning V per FD, and
//   * probes can run on a thread pool: they share only immutable state, so
//     the only ordering that matters is which failure is *reported*. We
//     keep the sequential semantics (lowest spec index wins) with an
//     atomic running-minimum over failing indexes; workers skip specs at
//     or above the current minimum, giving the early exit.
//
// A probe may also be resolved by the sound "pair screen": Test 1's
// closure criterion on the two-tuple subinstance {r, mu}. A screen success
// implies full-probe success (a two-tuple chase is a sub-chase of the
// generic instance: every derivation it makes, the full chase makes too),
// so screening only ever skips successful probes and never changes a
// verdict or a witness.

#ifndef RELVIEW_VIEW_CHASE_TEST_H_
#define RELVIEW_VIEW_CHASE_TEST_H_

#include <cstdint>
#include <vector>

#include "chase/code_chase.h"
#include "chase/instance_chase.h"
#include "deps/closure_cache.h"
#include "deps/fd_set.h"
#include "relational/relation.h"
#include "util/thread_pool.h"

namespace relview {

struct ChaseTestOptions {
  ChaseBackend backend = ChaseBackend::kHash;
  /// Chase the null-filled V once and re-chase only per-pair deltas.
  bool reuse_base_chase = true;
  /// Quantify over every mu row (needed by Theorem 9 case 2, where X∩Y is
  /// not necessarily a superkey of Y). When false only mu_rows.front() is
  /// used (sound when Sigma |= X∩Y -> Y).
  bool iterate_all_mus = false;
  /// View row index excluded as a violator (the replaced tuple t1), or -1.
  int skip_row = -1;
  /// Resolve probes by Test 1's closure criterion first (sound: screen
  /// successes are a subset of probe successes; see file comment). Off by
  /// default so the free functions keep the paper's literal cost model.
  bool pair_screen = false;
  /// Closure memo for the screen (and any other closure the test needs).
  /// May be null; must be thread-safe when pool is set (ClosureCache is).
  ClosureCache* closure_cache = nullptr;
  /// When non-null, probes are fanned out over this pool with the
  /// atomic first-counterexample early exit. Null = sequential.
  ThreadPool* pool = nullptr;
  /// Prebuilt delta-probe index (backend kColumnar, reuse mode only). Must
  /// have been built over exactly the fixpoint passed as BaseChaseView —
  /// the incremental engine caches one per base version. When null and the
  /// backend is kColumnar, RunProbeSpecs builds a per-call index.
  const CodeProbeIndex* probe_index = nullptr;
};

struct ChaseTestResult {
  /// True when every (f, r[, mu]) chase "succeeds" — no counterexample.
  bool ok = true;
  FD violated_fd;
  int witness_row = -1;
  int witness_mu = -1;
  int chases_run = 0;
  /// Probe accounting: total probes evaluated, probes resolved by the
  /// screen without chasing, and probes executed on pool threads.
  int64_t probes_run = 0;
  int64_t probes_screened = 0;
  int64_t probes_parallel = 0;
  ChaseStats stats;
};

/// One (f, r, mu) probe, independent of how view rows are numbered: a row
/// is identified by its null-id base (its Y−X cell w has null id
/// base + offsets[w]). RunConditionC uses base = row * width; the
/// incremental engine uses stable slot ids that survive view edits.
struct ProbeSpec {
  int fd_index = 0;  // index into fds.fds()
  int r = -1;        // candidate violator (reported as the witness)
  int mu = -1;       // complement-source row
  uint32_t r_null_base = 0;
  uint32_t mu_null_base = 0;
  /// Agreement of rows r and mu on X; used only by the pair screen.
  AttrSet x_agree;
};

/// Immutable base-chase fixpoint shared by all probes of one check. Both
/// pointers must outlive the call; `renames` maps the *input* relation's
/// values to their fixpoint values (chain-walked, as ChaseOutcome does).
struct BaseChaseView {
  const Relation* fixpoint = nullptr;
  const std::unordered_map<uint32_t, Value>* renames = nullptr;
};

/// Test 1's closure criterion on the pair {r, mu} for `fd`: success iff
/// the pair closure equates distinct constants of V or derives
/// r[rhs] = mu[rhs] with rhs in Y−X. Sound for the full probe (see file
/// comment). `cache` may be null.
bool PairScreenSucceeds(const FDSet& fds, const FD& fd, bool rhs_in_x,
                        const AttrSet& x, const AttrSet& y_only,
                        const AttrSet& x_agree, ClosureCache* cache);

/// Runs the probes in spec order and returns the index of the first
/// failing spec, or -1 when all succeed. In reuse mode (`base.fixpoint`
/// non-null) probes re-chase per-pair deltas on top of the fixpoint; in
/// scratch mode `generic` must be the generic instance relation and every
/// probe chases a renamed copy of it. `null_offsets` maps AttrId to the
/// offset within a row's null block. Accounting accumulates into `acc`.
int RunProbeSpecs(const std::vector<ProbeSpec>& specs, const FDSet& fds,
                  const AttrSet& x, const AttrSet& y_only,
                  const BaseChaseView& base, const Relation* generic,
                  const std::vector<int>& null_offsets,
                  const ChaseTestOptions& opts, ChaseTestResult* acc);

/// Runs the paper's condition (c) for inserting `t` (a tuple over x) into
/// view instance `v`, where `mu_rows` lists the rows of v matching t on
/// X ∩ Y. Preconditions (checked by callers): x ∪ y == universe,
/// mu_rows nonempty.
ChaseTestResult RunConditionC(const AttrSet& universe, const FDSet& fds,
                              const AttrSet& x, const AttrSet& y,
                              const Relation& v, const Tuple& t,
                              const std::vector<int>& mu_rows,
                              const ChaseTestOptions& opts);

}  // namespace relview

#endif  // RELVIEW_VIEW_CHASE_TEST_H_
