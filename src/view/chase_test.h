// Internal engine for condition (c) of Theorems 3 and 9: the chase-based
// counterexample search over the generic instance R(V, t, r, f). Shared by
// the insertion and replacement translators.

#ifndef RELVIEW_VIEW_CHASE_TEST_H_
#define RELVIEW_VIEW_CHASE_TEST_H_

#include <vector>

#include "chase/instance_chase.h"
#include "deps/fd_set.h"
#include "relational/relation.h"

namespace relview {

struct ChaseTestOptions {
  ChaseBackend backend = ChaseBackend::kHash;
  /// Chase the null-filled V once and re-chase only per-pair deltas.
  bool reuse_base_chase = true;
  /// Quantify over every mu row (needed by Theorem 9 case 2, where X∩Y is
  /// not necessarily a superkey of Y). When false only mu_rows.front() is
  /// used (sound when Sigma |= X∩Y -> Y).
  bool iterate_all_mus = false;
  /// View row index excluded as a violator (the replaced tuple t1), or -1.
  int skip_row = -1;
};

struct ChaseTestResult {
  /// True when every (f, r[, mu]) chase "succeeds" — no counterexample.
  bool ok = true;
  FD violated_fd;
  int witness_row = -1;
  int witness_mu = -1;
  int chases_run = 0;
  ChaseStats stats;
};

/// Runs the paper's condition (c) for inserting `t` (a tuple over x) into
/// view instance `v`, where `mu_rows` lists the rows of v matching t on
/// X ∩ Y. Preconditions (checked by callers): x ∪ y == universe,
/// mu_rows nonempty.
ChaseTestResult RunConditionC(const AttrSet& universe, const FDSet& fds,
                              const AttrSet& x, const AttrSet& y,
                              const Relation& v, const Tuple& t,
                              const std::vector<int>& mu_rows,
                              const ChaseTestOptions& opts);

}  // namespace relview

#endif  // RELVIEW_VIEW_CHASE_TEST_H_
