#include "view/complement.h"

#include <functional>

#include "chase/implication.h"

namespace relview {

namespace {

/// Enumerates subsets of `members` of size `k`, invoking fn; fn returns
/// true to stop. Returns true if stopped.
bool ForEachSubsetOfSize(const std::vector<AttrId>& members, int k,
                         const std::function<bool(const AttrSet&)>& fn) {
  const int n = static_cast<int>(members.size());
  if (k > n || k < 0) return false;
  std::vector<int> idx(k);
  for (int i = 0; i < k; ++i) idx[i] = i;
  while (true) {
    AttrSet s;
    for (int i : idx) s.Add(members[i]);
    if (fn(s)) return true;
    // Next combination.
    int i = k - 1;
    while (i >= 0 && idx[i] == n - k + i) --i;
    if (i < 0) return false;
    ++idx[i];
    for (int j = i + 1; j < k; ++j) idx[j] = idx[j - 1] + 1;
  }
}

}  // namespace

bool AreComplementaryFDOnly(const AttrSet& universe, const FDSet& fds,
                            const AttrSet& x, const AttrSet& y) {
  if ((x | y) != universe) return false;
  const AttrSet common = x & y;
  return fds.IsSuperkey(common, x) || fds.IsSuperkey(common, y);
}

bool AreComplementary(const AttrSet& universe, const DependencySet& sigma,
                      const AttrSet& x, const AttrSet& y) {
  if (sigma.HasEFDs()) {
    // Theorem 10. (b): Sigma_F |= X ∪ Y -> U.
    const FDSet all_fds = sigma.FdsWithEfdShadows();
    if (!all_fds.IsSuperkey(x | y, universe)) return false;
    // (a): X, Y complementary as views of pi_{X∪Y}(R), i.e. Sigma implies
    // the embedded MVD X∩Y ->-> X−Y | Y−X. Per Proposition 2(a), EFDs add
    // nothing to FD/JD/embedded-JD implication beyond their FD shadows.
    EmbeddedMVD emvd;
    emvd.context_lhs = x & y;
    emvd.left = x - y;
    emvd.right = y - x;
    return ImpliesEmbeddedMVD(universe, all_fds, sigma.jds, emvd);
  }
  // Theorem 1: complementary iff Sigma |= *[X, Y] (needs X ∪ Y = U).
  if ((x | y) != universe) return false;
  if (sigma.jds.empty()) {
    return AreComplementaryFDOnly(universe, sigma.fds, x, y);
  }
  return ImpliesMVD(universe, sigma.fds, sigma.jds, x, y);
}

AttrSet MinimalComplement(const AttrSet& universe, const DependencySet& sigma,
                          const AttrSet& x,
                          const std::vector<AttrId>* order) {
  AttrSet y = universe;  // The identity view is a complement of every view.
  // Without EFDs only attributes of X can leave the complement (X ∪ Y = U
  // is necessary); with EFDs any recoverable attribute may leave.
  std::vector<AttrId> candidates;
  if (order != nullptr) {
    candidates = *order;
  } else {
    candidates = (sigma.HasEFDs() ? universe : x).ToVector();
  }
  for (AttrId a : candidates) {
    if (!y.Contains(a)) continue;
    AttrSet smaller = y;
    smaller.Remove(a);
    if (AreComplementary(universe, sigma, x, smaller)) y = smaller;
  }
  RELVIEW_DCHECK(AreComplementary(universe, sigma, x, y),
                 "MinimalComplement lost complementarity");
  return y;
}

Result<MinimumComplementResult> MinimumComplement(
    const AttrSet& universe, const DependencySet& sigma, const AttrSet& x) {
  MinimumComplementResult res;
  if (!x.SubsetOf(universe)) {
    return Status::InvalidArgument("view is not a subset of the universe");
  }
  if (sigma.HasEFDs()) {
    // General search over all Y ⊆ U by cardinality.
    const std::vector<AttrId> members = universe.ToVector();
    if (members.size() > 24) {
      return Status::CapacityExceeded(
          "MinimumComplement with EFDs limited to 24 attributes");
    }
    for (int k = 0; k <= static_cast<int>(members.size()); ++k) {
      bool found = ForEachSubsetOfSize(members, k, [&](const AttrSet& y) {
        ++res.tests;
        if (AreComplementary(universe, sigma, x, y)) {
          res.complement = y;
          return true;
        }
        return false;
      });
      if (found) return res;
    }
    return Status::Internal("no complement found (identity should work)");
  }
  // FD/JD case: Y must contain U − X; only W = Y ∩ X varies.
  const AttrSet outside = universe - x;
  const std::vector<AttrId> members = x.ToVector();
  if (members.size() > 24) {
    return Status::CapacityExceeded(
        "MinimumComplement limited to views of 24 attributes");
  }
  for (int k = 0; k <= static_cast<int>(members.size()); ++k) {
    bool found = ForEachSubsetOfSize(members, k, [&](const AttrSet& w) {
      ++res.tests;
      if (AreComplementary(universe, sigma, x, w | outside)) {
        res.complement = w | outside;
        return true;
      }
      return false;
    });
    if (found) return res;
  }
  return Status::Internal("no complement found (identity should work)");
}

Result<bool> HasComplementOfSize(const AttrSet& universe,
                                 const DependencySet& sigma, const AttrSet& x,
                                 int k) {
  if (sigma.HasEFDs()) {
    // No monotonicity guarantee with EFDs: search size k exactly.
    const std::vector<AttrId> members = universe.ToVector();
    if (members.size() > 24) {
      return Status::CapacityExceeded(
          "HasComplementOfSize with EFDs limited to 24 attributes");
    }
    bool found = ForEachSubsetOfSize(members, k, [&](const AttrSet& y) {
      return AreComplementary(universe, sigma, x, y);
    });
    return found;
  }
  // Complement size is monotone for FDs + JDs (adding attributes preserves
  // Sigma |= *[X, Y]), so "exists of size k" == "minimum <= k".
  RELVIEW_ASSIGN_OR_RETURN(MinimumComplementResult min,
                           MinimumComplement(universe, sigma, x));
  return min.complement.Count() <= k;
}

}  // namespace relview
