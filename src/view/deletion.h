// Translation of deletions under constant complement (Section 4.1,
// Theorem 8). With FD-only Sigma the chase test disappears: deleting rows
// can never violate an FD, so the deletion of t from V is translatable as
// R <- R − t*pi_Y(R) iff
//   (a) t[X∩Y] ∈ pi_{X∩Y}(V − t)  (another view row keeps the complement
//       row alive), and
//   (b) Sigma |= X∩Y -> Y and Sigma |/= X∩Y -> X.
// Testable in O(|V| + |Sigma|).

#ifndef RELVIEW_VIEW_DELETION_H_
#define RELVIEW_VIEW_DELETION_H_

#include "deps/closure_cache.h"
#include "deps/fd_set.h"
#include "relational/relation.h"
#include "util/status.h"
#include "view/insertion.h"

namespace relview {

struct DeletionOptions {
  /// Shared closure memo for the condition (b) superkey checks. Optional.
  ClosureCache* closure_cache = nullptr;
};

struct DeletionReport {
  TranslationVerdict verdict = TranslationVerdict::kTranslatable;
  bool translatable() const {
    return verdict == TranslationVerdict::kTranslatable ||
           verdict == TranslationVerdict::kIdentity;
  }
  /// Time spent applying the translation (ViewTranslator::DeleteWithReport
  /// only; 0 for pure checks and rejected/identity updates).
  int64_t apply_nanos = 0;
};

/// Theorem 8 test. `t` must be a tuple over x's schema; if t ∉ V the
/// deletion is the identity.
Result<DeletionReport> CheckDeletion(const AttrSet& universe,
                                     const FDSet& fds, const AttrSet& x,
                                     const AttrSet& y, const Relation& v,
                                     const Tuple& t,
                                     const DeletionOptions& opts = {});

/// Applies T_u[R] = R − t*pi_Y(R).
Result<Relation> ApplyDeletion(const AttrSet& universe, const AttrSet& x,
                               const AttrSet& y, const Relation& r,
                               const Tuple& t);

}  // namespace relview

#endif  // RELVIEW_VIEW_DELETION_H_
