// Test 1 (Section 3.1): a stronger, faster translatability test for
// insertions. Instead of chasing the whole generic instance R(V, t, r, f),
// it chases only two-tuple subrelations {r, mu} (mu ranging over the rows
// matching t on X∩Y) and requires the success evidence to appear there.
// Consequently Test 1 never accepts an untranslatable insertion, but may
// reject translatable ones ("succeeds fast, if it succeeds at all").
//
// Backends:
//  * kTwoTupleChase — the literal description: materialize each {r, mu}
//    pair with fresh nulls and run a real chase. O(|V|^2 |Sigma|) chases.
//  * kClosure — the same mathematics without materialization: a two-tuple
//    chase is exactly an FD-closure computation on the pair's agreement
//    set, succeeding iff the closure (i) reaches the watched attribute A in
//    Y−X, or (ii) demands agreement on an X attribute where the constants
//    differ ("equates two distinct elements of V").
//  * kIndexed — the paper's improved algorithm (steps (1)–(4)): per-subset
//    agreement indexes over T = {mu} plus precomputed closures, with the
//    paper's cross-mu accumulation ("make r agree with nu on S+"). We
//    replace the 2^|U| sorted copies by per-subset hash multisets (same
//    role, better constants) and recover *exact* agreement patterns by a
//    superset Möbius transform. Accepts a superset of kTwoTupleChase's
//    insertions and remains sound (still never accepts an untranslatable
//    insertion, since the accumulated derivations are sub-chases of the
//    full generic instance).

#ifndef RELVIEW_VIEW_TEST1_H_
#define RELVIEW_VIEW_TEST1_H_

#include "deps/closure_cache.h"
#include "deps/fd_set.h"
#include "relational/relation.h"
#include "util/status.h"
#include "view/insertion.h"

namespace relview {

enum class Test1Backend { kTwoTupleChase, kClosure, kIndexed };

struct Test1Options {
  Test1Backend backend = Test1Backend::kClosure;
  /// Shared closure memo (replaces the indexed backend's local memo; also
  /// used by the closure backend). Optional.
  ClosureCache* closure_cache = nullptr;
};

struct Test1Report {
  /// kTranslatable here means "accepted by Test 1".
  TranslationVerdict verdict = TranslationVerdict::kTranslatable;
  bool accepted() const {
    return verdict == TranslationVerdict::kTranslatable ||
           verdict == TranslationVerdict::kIdentity;
  }
  FD violated_fd;
  int witness_row = -1;
  /// Effort: two-tuple chases or closure computations performed.
  int64_t probes = 0;
  /// Backend that actually ran (kIndexed degrades to kClosure when
  /// |X−Y| > 16 rather than failing; see indexed_fell_back).
  Test1Backend used_backend = Test1Backend::kClosure;
  bool indexed_fell_back = false;
};

/// Runs Test 1 for inserting `t` into `v` under view x / complement y.
Result<Test1Report> RunTest1(const AttrSet& universe, const FDSet& fds,
                             const AttrSet& x, const AttrSet& y,
                             const Relation& v, const Tuple& t,
                             const Test1Options& opts = {});

}  // namespace relview

#endif  // RELVIEW_VIEW_TEST1_H_
