#include "view/generic_instance.h"

namespace relview {

GenericInstance GenericInstance::Build(const AttrSet& universe,
                                       const AttrSet& x, const Relation& v) {
  RELVIEW_DCHECK(v.attrs() == x, "view instance schema must equal X");
  GenericInstance g;
  g.null_cols_ = universe - x;
  g.offsets_.assign(AttrSet::kMaxAttrs, -1);
  int off = 0;
  g.null_cols_.ForEach([&](AttrId a) { g.offsets_[a] = off++; });
  g.width_ = off;

  g.rel_ = Relation(universe);
  const Schema& full = g.rel_.schema();
  const Schema& vs = v.schema();
  for (int i = 0; i < v.size(); ++i) {
    Tuple t(full.arity());
    x.ForEach([&](AttrId a) { t.Set(full, a, v.row(i).At(vs, a)); });
    g.null_cols_.ForEach([&](AttrId a) { t.Set(full, a, g.NullAt(i, a)); });
    g.rel_.AddRow(std::move(t));
  }
  return g;
}

}  // namespace relview
