#include "view/find_complement.h"

#include <unordered_set>

namespace relview {

Result<FindComplementResult> FindTranslatingComplement(
    const AttrSet& universe, const FDSet& fds, const AttrSet& x,
    const Relation& v, const Tuple& t, FindComplementTest test,
    const AttrSet& partial_restriction) {
  if (!x.SubsetOf(universe) || v.attrs() != x || t.arity() != v.arity()) {
    return Status::InvalidArgument("bad view-update arguments");
  }
  FindComplementResult result;
  const Schema& vs = v.schema();
  const AttrSet outside = universe - x;

  // Collect the distinct W_r = {A in X : r[A] = t[A]} candidates.
  std::unordered_set<AttrSet, AttrSetHash> seen;
  std::vector<AttrSet> candidates;
  for (const Tuple& r : v.rows()) {
    AttrSet wr;
    x.ForEach([&](AttrId a) {
      if (r.At(vs, a) == t.At(vs, a)) wr.Add(a);
    });
    if (seen.insert(wr).second) candidates.push_back(wr);
  }
  result.candidates = static_cast<int>(candidates.size());

  for (const AttrSet& wr : candidates) {
    const AttrSet y = wr | outside;
    if (!partial_restriction.Empty() && !partial_restriction.SubsetOf(y)) {
      continue;
    }
    // Quick schema-level filters (conditions (b) of Theorem 3); the full
    // test repeats them, but they are O(|Sigma|) while the chase test is
    // expensive.
    if (!fds.IsSuperkey(wr, y) || fds.IsSuperkey(wr, x)) continue;

    ++result.tests_run;
    bool ok = false;
    if (test == FindComplementTest::kExact) {
      RELVIEW_ASSIGN_OR_RETURN(InsertionReport rep,
                               CheckInsertion(universe, fds, x, y, v, t));
      ok = rep.translatable();
    } else {
      RELVIEW_ASSIGN_OR_RETURN(Test1Report rep,
                               RunTest1(universe, fds, x, y, v, t));
      ok = rep.accepted();
    }
    if (ok) {
      result.found = true;
      result.complement = y;
      return result;
    }
  }
  return result;
}

}  // namespace relview
