#include "view/view_index.h"

#include <algorithm>

#include "obs/trace.h"

namespace relview {

// ---------------------------------------------------------------------------
// ViewIndex

ViewIndex ViewIndex::Build(const AttrSet& universe, const AttrSet& x,
                           const AttrSet& common, const FDSet& fds,
                           Relation view, StoreKind store) {
  ViewIndex idx;
  idx.store_ = MakeInstanceStore(store, std::move(view));
  idx.x_ = x;

  const AttrSet null_cols = universe - x;
  idx.null_offsets_.assign(AttrSet::kMaxAttrs, -1);
  int off = 0;
  null_cols.ForEach([&](AttrId a) { idx.null_offsets_[a] = off++; });
  idx.null_width_ = off;

  // subs_[0] is always the mu index on X∩Y; per-FD indexes on lhs∩X are
  // deduplicated by their column set (chain schemas share most of them).
  idx.subs_.push_back(SubIndex{common, {}});
  idx.fd_subindex_.assign(fds.size(), -1);
  for (int fi = 0; fi < fds.size(); ++fi) {
    const AttrSet zx = fds.fds()[fi].lhs & x;
    if (zx.Empty()) continue;  // every row is a candidate: no index helps
    int found = -1;
    for (size_t s = 0; s < idx.subs_.size(); ++s) {
      if (idx.subs_[s].cols == zx) {
        found = static_cast<int>(s);
        break;
      }
    }
    if (found < 0) {
      found = static_cast<int>(idx.subs_.size());
      idx.subs_.push_back(SubIndex{zx, {}});
    }
    idx.fd_subindex_[fi] = found;
  }

  // Seed slots 1:1 with initial positions.
  const int n = idx.size();
  idx.slot_of_pos_.resize(n);
  idx.pos_of_slot_.resize(n);
  for (int p = 0; p < n; ++p) {
    idx.slot_of_pos_[p] = p;
    idx.pos_of_slot_[p] = p;
    idx.AddSlot(p, p);
  }
  return idx;
}

int ViewIndex::PositionOf(const Tuple& t) const {
  return store_ ? store_->PositionOf(t) : -1;
}

void ViewIndex::AddSlot(int slot, int pos) {
  // InstanceStore::HashOn mirrors Tuple::HashOn bit-for-bit, so bucket
  // keys computed from stored rows and from query tuples interoperate.
  for (SubIndex& sub : subs_) {
    sub.buckets[store_->HashOn(pos, sub.cols)].push_back(slot);
  }
}

void ViewIndex::RemoveSlot(int slot, int pos) {
  for (SubIndex& sub : subs_) {
    auto it = sub.buckets.find(store_->HashOn(pos, sub.cols));
    RELVIEW_DCHECK(it != sub.buckets.end(), "view index bucket missing");
    std::vector<int>& slots = it->second;
    auto hit = std::find(slots.begin(), slots.end(), slot);
    RELVIEW_DCHECK(hit != slots.end(), "view index slot missing");
    *hit = slots.back();
    slots.pop_back();
    if (slots.empty()) sub.buckets.erase(it);
  }
}

void ViewIndex::CollectAgreeing(const SubIndex& sub, const Tuple& t,
                                std::vector<int>* out) const {
  out->clear();
  auto it = sub.buckets.find(t.HashOn(schema(), sub.cols));
  if (it == sub.buckets.end()) return;
  for (int slot : it->second) {
    const int pos = pos_of_slot_[slot];
    // Hash buckets can alias: confirm real agreement.
    if (store_->Agrees(pos, t, sub.cols)) out->push_back(pos);
  }
  std::sort(out->begin(), out->end());
}

void ViewIndex::MuPositions(const Tuple& t, std::vector<int>* out) const {
  CollectAgreeing(subs_[0], t, out);
}

void ViewIndex::CandidatePositions(int fd_index, const Tuple& t,
                                   std::vector<int>* out) const {
  const int sub = fd_subindex_[fd_index];
  if (sub < 0) {  // lhs∩X empty: every row agrees vacuously
    out->resize(size());
    for (int p = 0; p < size(); ++p) (*out)[p] = p;
    return;
  }
  CollectAgreeing(subs_[sub], t, out);
}

std::pair<int, int> ViewIndex::ApplyInsert(const Tuple& t) {
  const int pos = store_->InsertRow(t);
  RELVIEW_DCHECK(pos >= 0, "inserting a duplicate view row");

  int slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
    pos_of_slot_[slot] = pos;
  } else {
    slot = static_cast<int>(pos_of_slot_.size());
    pos_of_slot_.push_back(pos);
  }
  slot_of_pos_.insert(slot_of_pos_.begin() + pos, slot);
  for (int p = pos + 1; p < static_cast<int>(slot_of_pos_.size()); ++p) {
    pos_of_slot_[slot_of_pos_[p]] = p;
  }
  AddSlot(slot, pos);
  return {pos, slot};
}

void ViewIndex::ApplyDelete(const Tuple& t) {
  const int pos = PositionOf(t);
  RELVIEW_DCHECK(pos >= 0, "deleting a row absent from the view");
  const int slot = slot_of_pos_[pos];
  RemoveSlot(slot, pos);
  store_->EraseAt(pos);
  slot_of_pos_.erase(slot_of_pos_.begin() + pos);
  for (int p = pos; p < static_cast<int>(slot_of_pos_.size()); ++p) {
    pos_of_slot_[slot_of_pos_[p]] = p;
  }
  pos_of_slot_[slot] = -1;
  free_slots_.push_back(slot);
}

// ---------------------------------------------------------------------------
// BaseChaseCache

namespace {

/// The slot-keyed generic-instance row for view position `pos`.
Tuple SlotRow(const ViewIndex& index, const AttrSet& universe,
              const AttrSet& x, int pos, int slot, const Schema& us) {
  Tuple out(us.arity());
  x.ForEach([&](AttrId a) { out.Set(us, a, index.CellAt(pos, a)); });
  const uint32_t base = index.SlotNullBase(slot);
  (universe - x).ForEach([&](AttrId a) {
    out.Set(us, a,
            Value::Null(base + static_cast<uint32_t>(
                                   index.null_offsets()[a])));
  });
  return out;
}

void MergeChaseStats(const ChaseOutcome& out, ChaseTestResult* acc) {
  if (acc == nullptr) return;
  ++acc->chases_run;
  acc->stats.merges += out.stats.merges;
  acc->stats.rounds += out.stats.rounds;
  acc->stats.work += out.stats.work;
}

/// U recovered from the index's offset table and view schema.
AttrSet UniverseOf(const ViewIndex& index) {
  AttrSet universe = index.attrs();
  for (int a = 0; a < AttrSet::kMaxAttrs; ++a) {
    if (index.null_offsets()[a] >= 0) universe.Add(static_cast<AttrId>(a));
  }
  return universe;
}

}  // namespace

void BaseChaseCache::Invalidate() {
  ++version_;
  valid_ = false;
  conflict_ = false;
  fixpoint_ = Relation();
  renames_.clear();
  slot_of_row_.clear();
  row_of_slot_.clear();
  fd_buckets_.clear();
}

void BaseChaseCache::IndexRow(const FDSet& fds, int row) {
  const Schema& us = fixpoint_.schema();
  const Tuple& t = fixpoint_.row(row);
  const int slot = slot_of_row_[row];
  for (int fi = 0; fi < fds.size(); ++fi) {
    fd_buckets_[fi][t.HashOn(us, fds.fds()[fi].lhs)].push_back(slot);
  }
}

void BaseChaseCache::UnindexRow(const FDSet& fds, int row) {
  const Schema& us = fixpoint_.schema();
  const Tuple& t = fixpoint_.row(row);
  const int slot = slot_of_row_[row];
  for (int fi = 0; fi < fds.size(); ++fi) {
    auto it = fd_buckets_[fi].find(t.HashOn(us, fds.fds()[fi].lhs));
    RELVIEW_DCHECK(it != fd_buckets_[fi].end(), "base chase bucket missing");
    std::vector<int>& slots = it->second;
    auto p = std::find(slots.begin(), slots.end(), slot);
    RELVIEW_DCHECK(p != slots.end(), "base chase bucket slot missing");
    *p = slots.back();
    slots.pop_back();
    if (slots.empty()) fd_buckets_[fi].erase(it);
  }
}

void BaseChaseCache::EraseRow(int row) {
  const int slot = slot_of_row_[row];
  std::vector<Tuple>& rows = fixpoint_.mutable_rows();
  rows.erase(rows.begin() + row);
  slot_of_row_.erase(slot_of_row_.begin() + row);
  row_of_slot_[slot] = -1;
  for (int r = row; r < static_cast<int>(slot_of_row_.size()); ++r) {
    row_of_slot_[slot_of_row_[r]] = r;
  }
}

std::vector<int> BaseChaseCache::ComponentOf(const FDSet& fds,
                                             int row) const {
  const Schema& us = fixpoint_.schema();
  std::vector<char> visited(slot_of_row_.size(), 0);
  std::vector<int> stack{row};
  visited[row] = 1;
  std::vector<int> comp;
  while (!stack.empty()) {
    const int r = stack.back();
    stack.pop_back();
    comp.push_back(r);
    const Tuple& t = fixpoint_.row(r);
    for (int fi = 0; fi < fds.size(); ++fi) {
      auto it = fd_buckets_[fi].find(t.HashOn(us, fds.fds()[fi].lhs));
      if (it == fd_buckets_[fi].end()) continue;
      for (int slot : it->second) {
        const int rr = row_of_slot_[slot];
        if (!visited[rr]) {
          visited[rr] = 1;
          stack.push_back(rr);
        }
      }
    }
  }
  std::sort(comp.begin(), comp.end());
  return comp;
}

bool BaseChaseCache::SpliceRechase(const ViewIndex& index, const FDSet& fds,
                                   ChaseBackend backend,
                                   const std::vector<int>& comp,
                                   int erase_row, ChaseTestResult* acc) {
  RELVIEW_TRACE_SPAN_N(span, "base.splice_rechase");
  span.AddArg("component_rows", comp.size());
  rechased_rows_ += comp.size() - (erase_row >= 0 ? 1 : 0);
  if (comp.size() > max_component_) max_component_ = comp.size();
  const AttrSet x = index.attrs();
  const AttrSet universe = UniverseOf(index);
  const Schema& us = fixpoint_.schema();
  // Re-chase the surviving component rows from their pristine slot-keyed
  // seeds. The component is closed under every past and future chase
  // interaction (see the file comment), so this tiny chase reaches
  // exactly the merges a full rebuild would give these rows.
  Relation seeds(universe);
  std::vector<int> keep;
  for (int r : comp) {
    if (r == erase_row) continue;
    keep.push_back(r);
    const int slot = slot_of_row_[r];
    seeds.AddRow(SlotRow(index, universe, x, index.slot_pos(slot), slot, us));
  }
  ChaseOutcome out = ChaseInstance(seeds, fds, backend);
  MergeChaseStats(out, acc);
  if (out.conflict) {
    // Cannot happen splicing an *accepted* update into a legal view, but
    // degrade gracefully: drop the cache and let the next check rebuild.
    Invalidate();
    return false;
  }
  // Merges never cross components, so the stale rename entries are
  // exactly the ones keyed by a component slot's nulls.
  const int width = index.null_width();
  if (width > 0 && !renames_.empty()) {
    std::vector<char> in_comp(row_of_slot_.size(), 0);
    for (int r : comp) in_comp[slot_of_row_[r]] = 1;
    for (auto it = renames_.begin(); it != renames_.end();) {
      const uint32_t key = it->first;
      const uint32_t slot =
          (key & ~Value::kNullTag) / static_cast<uint32_t>(width);
      if ((key & Value::kNullTag) != 0 && slot < in_comp.size() &&
          in_comp[slot]) {
        it = renames_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (const auto& [from, to] : out.renames) renames_.emplace(from, to);

  for (int r : comp) UnindexRow(fds, r);
  std::vector<Tuple>& rows = fixpoint_.mutable_rows();
  for (size_t k = 0; k < keep.size(); ++k) {
    rows[keep[k]] = std::move(out.result.mutable_rows()[k]);
  }
  for (int r : keep) IndexRow(fds, r);
  if (erase_row >= 0) EraseRow(erase_row);
  return true;
}

void BaseChaseCache::Rebuild(const ViewIndex& index, const FDSet& fds,
                             ChaseBackend backend, ChaseTestResult* acc) {
  RELVIEW_TRACE_SPAN_N(span, "base.rebuild");
  span.AddArg("view_rows", static_cast<uint64_t>(index.size()));
  ++version_;
  const AttrSet x = index.attrs();
  const AttrSet universe = UniverseOf(index);
  Relation generic(universe);
  const Schema& us = generic.schema();
  for (int p = 0; p < index.size(); ++p) {
    generic.AddRow(SlotRow(index, universe, x, p, index.slot_at(p), us));
  }
  ChaseOutcome out = ChaseInstance(generic, fds, backend);
  MergeChaseStats(out, acc);
  conflict_ = out.conflict;
  fixpoint_ = std::move(out.result);
  renames_ = std::move(out.renames);
  valid_ = true;
  // The chase mutates rows in place, so fixpoint row p still corresponds
  // to view position p; seed the slot maps and interaction buckets.
  slot_of_row_.assign(index.size(), -1);
  row_of_slot_.assign(index.slot_count(), -1);
  fd_buckets_.assign(fds.size(), {});
  if (conflict_) return;  // partial state; TryRemove/ExtendWith are gated
  for (int p = 0; p < index.size(); ++p) {
    const int slot = index.slot_at(p);
    slot_of_row_[p] = slot;
    row_of_slot_[slot] = p;
  }
  for (int r = 0; r < fixpoint_.size(); ++r) IndexRow(fds, r);
}

void BaseChaseCache::ExtendWith(const ViewIndex& index, int pos, int slot,
                                const FDSet& fds, ChaseBackend backend,
                                ChaseTestResult* acc) {
  RELVIEW_DCHECK(valid_ && !conflict_, "extending an unusable base chase");
  ++version_;
  const AttrSet x = index.attrs();
  const AttrSet universe = UniverseOf(index);
  const int row = fixpoint_.size();
  fixpoint_.AddRow(SlotRow(index, universe, x, pos, slot, fixpoint_.schema()));
  slot_of_row_.push_back(slot);
  if (slot >= static_cast<int>(row_of_slot_.size())) {
    row_of_slot_.resize(slot + 1, -1);
  }
  row_of_slot_[slot] = row;
  IndexRow(fds, row);
  const std::vector<int> comp = ComponentOf(fds, row);
  if (comp.size() > 1) {
    SpliceRechase(index, fds, backend, comp, /*erase_row=*/-1, acc);
  }
}

bool BaseChaseCache::TryRemove(const ViewIndex& index, int pos,
                               const FDSet& fds, ChaseBackend backend,
                               ChaseTestResult* acc) {
  if (!valid_ || conflict_) return false;
  ++version_;
  const int slot = index.slot_at(pos);
  const int row = row_of_slot_[slot];
  RELVIEW_DCHECK(row >= 0, "slot missing from the base chase");
  if (row < 0) return false;
  const std::vector<int> comp = ComponentOf(fds, row);
  if (comp.size() == 1) {
    // Never interacted with anything, so no rename mentions its nulls
    // (that would need a step): excising the row is the whole update.
    UnindexRow(fds, row);
    EraseRow(row);
    return true;
  }
  return SpliceRechase(index, fds, backend, comp, row, acc);
}

// ---------------------------------------------------------------------------
// TranslatabilityEngine

TranslatabilityEngine::TranslatabilityEngine(const AttrSet& universe,
                                             const FDSet& fds,
                                             const AttrSet& x,
                                             const AttrSet& y,
                                             const EngineConfig& config)
    : universe_(universe),
      fds_(fds),
      x_(x),
      y_(y),
      common_(x & y),
      y_only_(y - x),
      config_(config),
      closures_(config.closure_cache_capacity) {
  if (config_.probe_threads > 1) {
    pool_ = std::make_unique<ThreadPool>(config_.probe_threads);
  }
}

void TranslatabilityEngine::Rebuild(const Relation& database) {
  index_ = ViewIndex::Build(universe_, x_, common_, fds_,
                            database.Project(x_), config_.store);
  base_.Invalidate();
  ++stats_.index_rebuilds;
}

Status TranslatabilityEngine::ValidateTuple(const Tuple& t,
                                            bool must_be_null_free) const {
  if (t.arity() != index_.schema().arity()) {
    return Status::InvalidArgument("tuple arity does not match view");
  }
  if (must_be_null_free) {
    for (const Value& val : t.values()) {
      if (val.is_null()) {
        return Status::InvalidArgument("inserted tuple must be null-free");
      }
    }
  }
  return Status::OK();
}

void TranslatabilityEngine::EnsureBase(ChaseTestResult* acc) {
  if (base_.valid()) {
    ++stats_.base_reuses;
    return;
  }
  base_.Rebuild(index_, fds_, config_.backend, acc);
  ++stats_.base_rebuilds;
}

void TranslatabilityEngine::RunC(const Tuple& t,
                                 const std::vector<int>& mu_positions,
                                 bool iterate_all_mus, int skip_row,
                                 ChaseTestResult* out) {
  RELVIEW_TRACE_SPAN_N(span, "engine.condition_c");
  EnsureBase(out);
  if (base_.conflict()) return;  // condition (c) holds vacuously

  std::vector<int> mus;
  if (iterate_all_mus) {
    mus = mu_positions;
  } else {
    mus.push_back(mu_positions.front());
  }

  const Schema& vs = index_.schema();
  std::vector<ProbeSpec> specs;
  std::vector<int> cand;
  for (int fi = 0; fi < fds_.size(); ++fi) {
    const FD& fd = fds_.fds()[fi];
    const bool rhs_in_x = x_.Contains(fd.rhs);
    index_.CandidatePositions(fi, t, &cand);
    for (int r : cand) {
      if (r == skip_row) continue;
      const Tuple vr = index_.RowAt(r);
      if (rhs_in_x && vr.At(vs, fd.rhs) == t.At(vs, fd.rhs)) continue;
      for (int mu : mus) {
        ProbeSpec spec;
        spec.fd_index = fi;
        spec.r = r;
        spec.mu = mu;
        spec.r_null_base = index_.SlotNullBase(index_.slot_at(r));
        spec.mu_null_base = index_.SlotNullBase(index_.slot_at(mu));
        if (config_.pair_screen) {
          const Tuple vmu = index_.RowAt(mu);
          x_.ForEach([&](AttrId a) {
            if (vr.At(vs, a) == vmu.At(vs, a)) spec.x_agree.Add(a);
          });
        }
        specs.push_back(spec);
      }
    }
  }

  ChaseTestOptions opts;
  opts.backend = config_.backend;
  opts.pair_screen = config_.pair_screen;
  opts.closure_cache = &closures_;
  opts.pool = pool_.get();
  // The columnar probe path chases deltas on a frozen CodeProbeIndex; one
  // index serves every probe of every check until the base chase next
  // mutates (version-keyed), so steady-state checks skip the build cost.
  if (config_.backend == ChaseBackend::kColumnar && !specs.empty()) {
    if (!probe_index_valid_ || probe_index_version_ != base_.version()) {
      probe_index_ = CodeProbeIndex::Build(*base_.AsView().fixpoint, fds_);
      probe_index_version_ = base_.version();
      probe_index_valid_ = true;
      ++stats_.probe_index_builds;
    } else {
      ++stats_.probe_index_reuses;
    }
    opts.probe_index = &probe_index_;
  }
  const int fail =
      RunProbeSpecs(specs, fds_, x_, y_only_, base_.AsView(),
                    /*generic=*/nullptr, index_.null_offsets(), opts, out);
  if (fail >= 0) {
    out->ok = false;
    out->violated_fd = fds_.fds()[specs[fail].fd_index];
    out->witness_row = specs[fail].r;
    out->witness_mu = specs[fail].mu;
  }
  stats_.probes_run += static_cast<uint64_t>(out->probes_run);
  stats_.probes_screened += static_cast<uint64_t>(out->probes_screened);
  stats_.probes_parallel += static_cast<uint64_t>(out->probes_parallel);
  span.AddArg("specs", specs.size());
  span.AddArg("probes_run", static_cast<uint64_t>(out->probes_run));
}

Result<InsertionReport> TranslatabilityEngine::CheckInsert(const Tuple& t) {
  RELVIEW_TRACE_SPAN("engine.check_insert");
  ++stats_.index_reuses;
  RELVIEW_RETURN_IF_ERROR(ValidateTuple(t, /*must_be_null_free=*/true));
  InsertionReport report;
  if (index_.Contains(t)) {
    report.verdict = TranslationVerdict::kIdentity;
    return report;
  }
  // Condition (a): O(1) expected via the mu index.
  std::vector<int> mus;
  index_.MuPositions(t, &mus);
  if (mus.empty()) {
    report.verdict = TranslationVerdict::kFailsComplementMembership;
    return report;
  }
  // Condition (b): one cached closure answers both superkey questions.
  const AttrSet cl = closures_.Closure(fds_, common_);
  if (x_.SubsetOf(cl)) {
    report.verdict = TranslationVerdict::kFailsCommonPartKeyOfX;
    return report;
  }
  if (!y_.SubsetOf(cl)) {
    report.verdict = TranslationVerdict::kFailsCommonPartNotKeyOfY;
    return report;
  }
  // Condition (c).
  ChaseTestResult c;
  RunC(t, mus, /*iterate_all_mus=*/false, /*skip_row=*/-1, &c);
  report.chases_run = c.chases_run;
  report.stats = c.stats;
  if (!c.ok) {
    report.verdict = TranslationVerdict::kFailsChase;
    report.violated_fd = c.violated_fd;
    report.witness_row = c.witness_row;
    report.witness_tuple = index_.RowAt(c.witness_row);
    if (c.witness_mu >= 0) {
      report.witness_mu_tuple = index_.RowAt(c.witness_mu);
    }
    return report;
  }
  report.verdict = TranslationVerdict::kTranslatable;
  return report;
}

Result<DeletionReport> TranslatabilityEngine::CheckDelete(const Tuple& t) {
  RELVIEW_TRACE_SPAN("engine.check_delete");
  ++stats_.index_reuses;
  RELVIEW_RETURN_IF_ERROR(ValidateTuple(t, /*must_be_null_free=*/false));
  DeletionReport report;
  const int pos = index_.PositionOf(t);
  if (pos < 0) {
    report.verdict = TranslationVerdict::kIdentity;
    return report;
  }
  // Condition (a): another row shares t's common part.
  std::vector<int> mus;
  index_.MuPositions(t, &mus);
  bool witness = false;
  for (int p : mus) {
    if (p != pos) {
      witness = true;
      break;
    }
  }
  if (!witness) {
    report.verdict = TranslationVerdict::kFailsComplementMembership;
    return report;
  }
  // Condition (b).
  const AttrSet cl = closures_.Closure(fds_, common_);
  if (x_.SubsetOf(cl)) {
    report.verdict = TranslationVerdict::kFailsCommonPartKeyOfX;
    return report;
  }
  if (!y_.SubsetOf(cl)) {
    report.verdict = TranslationVerdict::kFailsCommonPartNotKeyOfY;
    return report;
  }
  report.verdict = TranslationVerdict::kTranslatable;
  return report;
}

Result<ReplacementReport> TranslatabilityEngine::CheckReplace(
    const Tuple& t1, const Tuple& t2) {
  RELVIEW_TRACE_SPAN("engine.check_replace");
  ++stats_.index_reuses;
  RELVIEW_RETURN_IF_ERROR(ValidateTuple(t1, /*must_be_null_free=*/false));
  RELVIEW_RETURN_IF_ERROR(ValidateTuple(t2, /*must_be_null_free=*/false));
  ReplacementReport report;
  if (t1 == t2) {
    report.verdict = TranslationVerdict::kIdentity;
    return report;
  }
  const int t1_row = index_.PositionOf(t1);
  if (t1_row < 0) {
    return Status::InvalidArgument("replaced tuple t1 must be in the view");
  }
  if (index_.Contains(t2)) {
    return Status::InvalidArgument(
        "replacement target t2 must not already be in the view");
  }

  const Schema& vs = index_.schema();
  const bool same_common = t1.AgreesWith(t2, vs, common_);
  report.theorem_case = same_common ? 2 : 1;

  std::vector<int> mus;
  index_.MuPositions(t2, &mus);

  if (!same_common) {
    // Case 1: t1's complement row survives via another view row, and t2's
    // complement row already exists.
    std::vector<int> t1_bucket;
    index_.MuPositions(t1, &t1_bucket);
    bool t1_witness = false;
    for (int p : t1_bucket) {
      if (p != t1_row) {
        t1_witness = true;
        break;
      }
    }
    if (!t1_witness || mus.empty()) {
      report.verdict = TranslationVerdict::kFailsComplementMembership;
      return report;
    }
    const AttrSet cl = closures_.Closure(fds_, common_);
    if (x_.SubsetOf(cl)) {
      report.verdict = TranslationVerdict::kFailsCommonPartKeyOfX;
      return report;
    }
    if (!y_.SubsetOf(cl)) {
      report.verdict = TranslationVerdict::kFailsCommonPartNotKeyOfY;
      return report;
    }
  } else {
    RELVIEW_DCHECK(!mus.empty(), "case 2 must have t1 as a mu row");
  }

  ChaseTestResult c;
  RunC(t2, mus, /*iterate_all_mus=*/same_common, t1_row, &c);
  report.chases_run = c.chases_run;
  if (!c.ok) {
    report.verdict = TranslationVerdict::kFailsChase;
    report.violated_fd = c.violated_fd;
    report.witness_row = c.witness_row;
    report.witness_tuple = index_.RowAt(c.witness_row);
    if (c.witness_mu >= 0) {
      report.witness_mu_tuple = index_.RowAt(c.witness_mu);
    }
    return report;
  }
  report.verdict = TranslationVerdict::kTranslatable;
  return report;
}

void TranslatabilityEngine::NotifyInsert(const Tuple& t) {
  RELVIEW_TRACE_SPAN("engine.notify_insert");
  const auto [pos, slot] = index_.ApplyInsert(t);
  if (base_.valid() && !base_.conflict()) {
    base_.ExtendWith(index_, pos, slot, fds_, config_.backend, nullptr);
    ++stats_.base_extends;
  }
  // A conflicted base stays valid: inserting a row cannot remove the
  // conflict, so condition (c) keeps holding vacuously.
}

void TranslatabilityEngine::NotifyDelete(const Tuple& t) {
  RELVIEW_TRACE_SPAN("engine.notify_delete");
  const int pos = index_.PositionOf(t);
  RELVIEW_DCHECK(pos >= 0, "notified delete of a row absent from the view");
  if (base_.TryRemove(index_, pos, fds_, config_.backend, nullptr)) {
    ++stats_.base_shrinks;
  } else {
    base_.Invalidate();
  }
  index_.ApplyDelete(t);
}

void TranslatabilityEngine::NotifyReplace(const Tuple& t1, const Tuple& t2) {
  RELVIEW_TRACE_SPAN("engine.notify_replace");
  const int pos = index_.PositionOf(t1);
  RELVIEW_DCHECK(pos >= 0, "notified replace of a row absent from the view");
  const bool kept =
      base_.TryRemove(index_, pos, fds_, config_.backend, nullptr);
  index_.ApplyDelete(t1);
  const auto [npos, nslot] = index_.ApplyInsert(t2);
  if (kept) {
    ++stats_.base_shrinks;
    base_.ExtendWith(index_, npos, nslot, fds_, config_.backend, nullptr);
    ++stats_.base_extends;
  } else {
    base_.Invalidate();
  }
}

EngineStats TranslatabilityEngine::stats() const {
  EngineStats s = stats_;
  s.closure_hits = closures_.hits();
  s.closure_misses = closures_.misses();
  s.closure_hit_rate = closures_.hit_rate();
  s.component_rows_rechased = base_.rechased_rows();
  s.max_component_size = base_.max_component();
  return s;
}

}  // namespace relview
