#include "view/translator.h"

#include "deps/satisfies.h"
#include "obs/trace.h"
#include "util/small_util.h"

namespace relview {

ViewTranslator::ViewTranslator(Universe universe, DependencySet sigma,
                               AttrSet x, AttrSet y)
    : universe_(std::move(universe)),
      sigma_(std::move(sigma)),
      x_(x),
      y_(y) {}

ViewTranslator::ViewTranslator(const ViewTranslator& other)
    : universe_(other.universe_),
      sigma_(other.sigma_),
      x_(other.x_),
      y_(other.y_),
      options_(other.options_),
      good_(other.good_),
      database_(other.database_) {}

ViewTranslator& ViewTranslator::operator=(const ViewTranslator& other) {
  if (this == &other) return *this;
  universe_ = other.universe_;
  sigma_ = other.sigma_;
  x_ = other.x_;
  y_ = other.y_;
  options_ = other.options_;
  good_ = other.good_;
  database_ = other.database_;
  engine_.reset();  // caches are per-instance; rebuild lazily
  return *this;
}

Result<ViewTranslator> ViewTranslator::Create(Universe universe,
                                              DependencySet sigma, AttrSet x,
                                              AttrSet y,
                                              TranslatorOptions options) {
  const AttrSet u = universe.All();
  if (!x.SubsetOf(u) || !y.SubsetOf(u)) {
    return Status::InvalidArgument("view/complement outside the universe");
  }
  if (options.probe_threads < 1) {
    return Status::InvalidArgument("probe_threads must be >= 1");
  }
  if (!AreComplementary(u, sigma, x, y)) {
    return Status::FailedPrecondition(
        "X and Y are not complementary under Sigma (Theorem 1): X=" +
        universe.Format(x) + " Y=" + universe.Format(y));
  }
  ViewTranslator vt(std::move(universe), std::move(sigma), x, y);
  vt.options_ = options;
  vt.good_ = CheckGoodComplement(u, vt.sigma_.fds, x, y);
  return vt;
}

Status ViewTranslator::Bind(Relation database) {
  if (database.attrs() != universe_.All()) {
    return Status::InvalidArgument("database must be over the universe");
  }
  if (!SatisfiesAll(database, sigma_)) {
    return Status::FailedPrecondition("database violates Sigma");
  }
  database.Normalize();
  database_ = std::move(database);
  engine_.reset();
  return Status::OK();
}

void ViewTranslator::InstallDatabase(Relation database) {
  database_ = std::move(database);
  engine_.reset();
}

TranslatabilityEngine* ViewTranslator::EngineOrNull() const {
  if (!options_.incremental || !bound()) return nullptr;
  if (engine_ == nullptr) {
    EngineConfig config;
    config.backend = options_.backend;
    config.store = options_.store;
    if (options_.store == StoreKind::kColumnar) {
      // The columnar store's whole point is the vectorized probe path.
      config.backend = ChaseBackend::kColumnar;
    }
    config.probe_threads = options_.probe_threads;
    config.pair_screen = options_.pair_screen;
    config.closure_cache_capacity = options_.closure_cache_capacity;
    engine_ = std::make_unique<TranslatabilityEngine>(
        universe_.All(), sigma_.fds, x_, y_, config);
    engine_->Rebuild(*database_);
  }
  return engine_.get();
}

EngineStats ViewTranslator::engine_stats() const {
  return engine_ != nullptr ? engine_->stats() : EngineStats{};
}

Result<Relation> ViewTranslator::ViewInstance() const {
  if (!bound()) return Status::FailedPrecondition("no database bound");
  if (TranslatabilityEngine* engine = EngineOrNull()) {
    return engine->view();
  }
  return database_->Project(x_);
}

Result<InsertionReport> ViewTranslator::CanInsert(const Tuple& t) const {
  if (TranslatabilityEngine* engine = EngineOrNull()) {
    return engine->CheckInsert(t);
  }
  RELVIEW_ASSIGN_OR_RETURN(Relation v, ViewInstance());
  return CheckInsertion(universe_.All(), sigma_.fds, x_, y_, v, t);
}

Result<DeletionReport> ViewTranslator::CanDelete(const Tuple& t) const {
  if (TranslatabilityEngine* engine = EngineOrNull()) {
    return engine->CheckDelete(t);
  }
  RELVIEW_ASSIGN_OR_RETURN(Relation v, ViewInstance());
  return CheckDeletion(universe_.All(), sigma_.fds, x_, y_, v, t);
}

Result<ReplacementReport> ViewTranslator::CanReplace(const Tuple& t1,
                                                     const Tuple& t2) const {
  if (TranslatabilityEngine* engine = EngineOrNull()) {
    return engine->CheckReplace(t1, t2);
  }
  RELVIEW_ASSIGN_OR_RETURN(Relation v, ViewInstance());
  return CheckReplacement(universe_.All(), sigma_.fds, x_, y_, v, t1, t2);
}

Result<InsertionReport> ViewTranslator::InsertWithReport(const Tuple& t) {
  RELVIEW_TRACE_SPAN("translator.insert");
  RELVIEW_ASSIGN_OR_RETURN(InsertionReport report, CanInsert(t));
  if (!report.translatable() ||
      report.verdict == TranslationVerdict::kIdentity) {
    return report;
  }
  Timer apply_timer;
  RELVIEW_ASSIGN_OR_RETURN(
      Relation updated,
      ApplyInsertion(universe_.All(), x_, y_, *database_, t));
  if (options_.paranoid_checks) {
    RELVIEW_DCHECK(SatisfiesAll(updated, sigma_.fds),
                   "translated insertion produced an illegal database");
  }
  database_ = std::move(updated);
  if (engine_ != nullptr) engine_->NotifyInsert(t);
  report.apply_nanos = apply_timer.ElapsedNanos();
  return report;
}

Result<DeletionReport> ViewTranslator::DeleteWithReport(const Tuple& t) {
  RELVIEW_TRACE_SPAN("translator.delete");
  RELVIEW_ASSIGN_OR_RETURN(DeletionReport report, CanDelete(t));
  if (!report.translatable() ||
      report.verdict == TranslationVerdict::kIdentity) {
    return report;
  }
  Timer apply_timer;
  RELVIEW_ASSIGN_OR_RETURN(
      Relation updated,
      ApplyDeletion(universe_.All(), x_, y_, *database_, t));
  database_ = std::move(updated);
  if (engine_ != nullptr) engine_->NotifyDelete(t);
  report.apply_nanos = apply_timer.ElapsedNanos();
  return report;
}

Result<ReplacementReport> ViewTranslator::ReplaceWithReport(
    const Tuple& t1, const Tuple& t2) {
  RELVIEW_TRACE_SPAN("translator.replace");
  RELVIEW_ASSIGN_OR_RETURN(ReplacementReport report, CanReplace(t1, t2));
  if (!report.translatable() ||
      report.verdict == TranslationVerdict::kIdentity) {
    return report;
  }
  Timer apply_timer;
  RELVIEW_ASSIGN_OR_RETURN(
      Relation updated,
      ApplyReplacement(universe_.All(), x_, y_, *database_, t1, t2));
  if (options_.paranoid_checks) {
    RELVIEW_DCHECK(SatisfiesAll(updated, sigma_.fds),
                   "translated replacement produced an illegal database");
  }
  database_ = std::move(updated);
  if (engine_ != nullptr) engine_->NotifyReplace(t1, t2);
  report.apply_nanos = apply_timer.ElapsedNanos();
  return report;
}

Status ViewTranslator::Insert(const Tuple& t) {
  RELVIEW_ASSIGN_OR_RETURN(InsertionReport report, InsertWithReport(t));
  if (!report.translatable()) {
    return Status::Untranslatable(report.ToString());
  }
  return Status::OK();
}

Status ViewTranslator::Delete(const Tuple& t) {
  RELVIEW_ASSIGN_OR_RETURN(DeletionReport report, DeleteWithReport(t));
  if (!report.translatable()) {
    return Status::Untranslatable(TranslationVerdictName(report.verdict));
  }
  return Status::OK();
}

Status ViewTranslator::Replace(const Tuple& t1, const Tuple& t2) {
  RELVIEW_ASSIGN_OR_RETURN(ReplacementReport report,
                           ReplaceWithReport(t1, t2));
  if (!report.translatable()) {
    return Status::Untranslatable(TranslationVerdictName(report.verdict));
  }
  return Status::OK();
}

}  // namespace relview
