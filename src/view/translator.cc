#include "view/translator.h"

#include "deps/satisfies.h"

namespace relview {

ViewTranslator::ViewTranslator(Universe universe, DependencySet sigma,
                               AttrSet x, AttrSet y)
    : universe_(std::move(universe)),
      sigma_(std::move(sigma)),
      x_(x),
      y_(y) {}

Result<ViewTranslator> ViewTranslator::Create(Universe universe,
                                              DependencySet sigma, AttrSet x,
                                              AttrSet y) {
  const AttrSet u = universe.All();
  if (!x.SubsetOf(u) || !y.SubsetOf(u)) {
    return Status::InvalidArgument("view/complement outside the universe");
  }
  if (!AreComplementary(u, sigma, x, y)) {
    return Status::FailedPrecondition(
        "X and Y are not complementary under Sigma (Theorem 1): X=" +
        universe.Format(x) + " Y=" + universe.Format(y));
  }
  ViewTranslator vt(std::move(universe), std::move(sigma), x, y);
  vt.good_ = CheckGoodComplement(u, vt.sigma_.fds, x, y);
  return vt;
}

Status ViewTranslator::Bind(Relation database) {
  if (database.attrs() != universe_.All()) {
    return Status::InvalidArgument("database must be over the universe");
  }
  if (!SatisfiesAll(database, sigma_)) {
    return Status::FailedPrecondition("database violates Sigma");
  }
  database.Normalize();
  database_ = std::move(database);
  return Status::OK();
}

Result<Relation> ViewTranslator::ViewInstance() const {
  if (!bound()) return Status::FailedPrecondition("no database bound");
  return database_->Project(x_);
}

Result<InsertionReport> ViewTranslator::CanInsert(const Tuple& t) const {
  RELVIEW_ASSIGN_OR_RETURN(Relation v, ViewInstance());
  return CheckInsertion(universe_.All(), sigma_.fds, x_, y_, v, t);
}

Result<DeletionReport> ViewTranslator::CanDelete(const Tuple& t) const {
  RELVIEW_ASSIGN_OR_RETURN(Relation v, ViewInstance());
  return CheckDeletion(universe_.All(), sigma_.fds, x_, y_, v, t);
}

Result<ReplacementReport> ViewTranslator::CanReplace(const Tuple& t1,
                                                     const Tuple& t2) const {
  RELVIEW_ASSIGN_OR_RETURN(Relation v, ViewInstance());
  return CheckReplacement(universe_.All(), sigma_.fds, x_, y_, v, t1, t2);
}

Status ViewTranslator::Insert(const Tuple& t) {
  RELVIEW_ASSIGN_OR_RETURN(InsertionReport report, CanInsert(t));
  if (!report.translatable()) {
    return Status::Untranslatable(report.ToString());
  }
  if (report.verdict == TranslationVerdict::kIdentity) return Status::OK();
  RELVIEW_ASSIGN_OR_RETURN(
      Relation updated,
      ApplyInsertion(universe_.All(), x_, y_, *database_, t));
  RELVIEW_DCHECK(SatisfiesAll(updated, sigma_.fds),
                 "translated insertion produced an illegal database");
  database_ = std::move(updated);
  return Status::OK();
}

Status ViewTranslator::Delete(const Tuple& t) {
  RELVIEW_ASSIGN_OR_RETURN(DeletionReport report, CanDelete(t));
  if (!report.translatable()) {
    return Status::Untranslatable(TranslationVerdictName(report.verdict));
  }
  if (report.verdict == TranslationVerdict::kIdentity) return Status::OK();
  RELVIEW_ASSIGN_OR_RETURN(
      Relation updated,
      ApplyDeletion(universe_.All(), x_, y_, *database_, t));
  database_ = std::move(updated);
  return Status::OK();
}

Status ViewTranslator::Replace(const Tuple& t1, const Tuple& t2) {
  RELVIEW_ASSIGN_OR_RETURN(ReplacementReport report, CanReplace(t1, t2));
  if (!report.translatable()) {
    return Status::Untranslatable(TranslationVerdictName(report.verdict));
  }
  if (report.verdict == TranslationVerdict::kIdentity) return Status::OK();
  RELVIEW_ASSIGN_OR_RETURN(
      Relation updated,
      ApplyReplacement(universe_.All(), x_, y_, *database_, t1, t2));
  RELVIEW_DCHECK(SatisfiesAll(updated, sigma_.fds),
                 "translated replacement produced an illegal database");
  database_ = std::move(updated);
  return Status::OK();
}

}  // namespace relview
