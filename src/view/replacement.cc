#include "view/replacement.h"

#include <vector>

#include "view/chase_test.h"

namespace relview {

Result<ReplacementReport> CheckReplacement(
    const AttrSet& universe, const FDSet& fds, const AttrSet& x,
    const AttrSet& y, const Relation& v, const Tuple& t1, const Tuple& t2,
    const ReplacementOptions& opts) {
  if (!x.SubsetOf(universe) || (x | y) != universe) {
    return Status::InvalidArgument("bad view/complement pair");
  }
  if (v.attrs() != x || t1.arity() != v.arity() ||
      t2.arity() != v.arity()) {
    return Status::InvalidArgument("tuple/view schema mismatch");
  }
  ReplacementReport report;
  if (t1 == t2) {
    report.verdict = TranslationVerdict::kIdentity;
    return report;
  }
  if (!v.ContainsRow(t1)) {
    return Status::InvalidArgument("replaced tuple t1 must be in the view");
  }
  if (v.ContainsRow(t2)) {
    return Status::InvalidArgument(
        "replacement target t2 must not already be in the view");
  }

  const Schema& vs = v.schema();
  const AttrSet common = x & y;
  int t1_row = -1;
  for (int i = 0; i < v.size(); ++i) {
    if (v.row(i) == t1) t1_row = i;
  }

  const bool same_common = t1.AgreesWith(t2, vs, common);
  report.theorem_case = same_common ? 2 : 1;

  // Rows of V matching t2 on the common part: the sources of the inserted
  // tuples' complement columns.
  std::vector<int> mu_rows;
  for (int i = 0; i < v.size(); ++i) {
    if (v.row(i).AgreesWith(t2, vs, common)) mu_rows.push_back(i);
  }

  if (!same_common) {
    // Case 1. Condition (a): t1's complement row must survive via another
    // view row, and t2's complement row must already exist.
    bool t1_witness = false;
    for (int i = 0; i < v.size(); ++i) {
      if (i != t1_row && v.row(i).AgreesWith(t1, vs, common)) {
        t1_witness = true;
      }
    }
    if (!t1_witness || mu_rows.empty()) {
      report.verdict = TranslationVerdict::kFailsComplementMembership;
      return report;
    }
    // Condition (b).
    const AttrSet common_closure =
        opts.closure_cache != nullptr
            ? opts.closure_cache->Closure(fds, common)
            : fds.Closure(common);
    if (x.SubsetOf(common_closure)) {
      report.verdict = TranslationVerdict::kFailsCommonPartKeyOfX;
      return report;
    }
    if (!y.SubsetOf(common_closure)) {
      report.verdict = TranslationVerdict::kFailsCommonPartNotKeyOfY;
      return report;
    }
  } else {
    // Case 2: t1 itself witnesses t2's common part; conditions (a)/(b)
    // are automatically satisfiable (mu_rows contains t1_row).
    RELVIEW_DCHECK(!mu_rows.empty(), "case 2 must have t1 as a mu row");
  }

  // Condition (c): chase test for t2, excluding t1 as a violator. In case
  // 2 the common part need not determine Y, so all mu rows are probed.
  ChaseTestOptions copts;
  copts.backend = opts.backend;
  copts.reuse_base_chase = true;
  copts.closure_cache = opts.closure_cache;
  copts.skip_row = t1_row;
  copts.iterate_all_mus = same_common;
  const ChaseTestResult c =
      RunConditionC(universe, fds, x, y, v, t2, mu_rows, copts);
  report.chases_run = c.chases_run;
  if (!c.ok) {
    report.verdict = TranslationVerdict::kFailsChase;
    report.violated_fd = c.violated_fd;
    report.witness_row = c.witness_row;
    report.witness_tuple = v.row(c.witness_row);
    if (c.witness_mu >= 0) report.witness_mu_tuple = v.row(c.witness_mu);
    return report;
  }
  report.verdict = TranslationVerdict::kTranslatable;
  return report;
}

Result<Relation> ApplyReplacement(const AttrSet& universe, const AttrSet& x,
                                  const AttrSet& y, const Relation& r,
                                  const Tuple& t1, const Tuple& t2) {
  if (r.attrs() != universe || (x | y) != universe) {
    return Status::InvalidArgument("bad database/view arguments");
  }
  const Relation py = r.Project(y);
  Relation t1x(x);
  t1x.AddRow(t1);
  Relation t2x(x);
  t2x.AddRow(t2);
  const Relation removed = Relation::NaturalJoin(t1x, py);
  const Relation added = Relation::NaturalJoin(t2x, py);
  RELVIEW_ASSIGN_OR_RETURN(Relation without,
                           Relation::Difference(r, removed));
  return Relation::Union(without, added);
}

}  // namespace relview
