#include "view/insertion.h"

#include <vector>

#include "view/chase_test.h"

namespace relview {

const char* TranslationVerdictName(TranslationVerdict v) {
  switch (v) {
    case TranslationVerdict::kTranslatable:
      return "Translatable";
    case TranslationVerdict::kIdentity:
      return "Identity";
    case TranslationVerdict::kFailsComplementMembership:
      return "FailsComplementMembership";
    case TranslationVerdict::kFailsCommonPartNotKeyOfY:
      return "FailsCommonPartNotKeyOfY";
    case TranslationVerdict::kFailsCommonPartKeyOfX:
      return "FailsCommonPartKeyOfX";
    case TranslationVerdict::kFailsChase:
      return "FailsChase";
  }
  return "Unknown";
}

char FailingCondition(TranslationVerdict v) {
  switch (v) {
    case TranslationVerdict::kTranslatable:
    case TranslationVerdict::kIdentity:
      return '-';
    case TranslationVerdict::kFailsComplementMembership:
      return 'a';
    case TranslationVerdict::kFailsCommonPartNotKeyOfY:
    case TranslationVerdict::kFailsCommonPartKeyOfX:
      return 'b';
    case TranslationVerdict::kFailsChase:
      return 'c';
  }
  return '-';
}

std::string InsertionReport::ToString() const {
  std::string out = TranslationVerdictName(verdict);
  if (verdict == TranslationVerdict::kFailsChase) {
    out += " (fd " + violated_fd.ToString() + ", view row " +
           std::to_string(witness_row) + ")";
  }
  return out;
}

namespace {

Status ValidateViewArgs(const AttrSet& universe, const AttrSet& x,
                        const AttrSet& y, const Relation& v, const Tuple& t) {
  if (!x.SubsetOf(universe) || !y.SubsetOf(universe)) {
    return Status::InvalidArgument("view/complement not within universe");
  }
  if ((x | y) != universe) {
    return Status::InvalidArgument(
        "X ∪ Y must equal U (FD-only complements contain U − X)");
  }
  if (v.attrs() != x) {
    return Status::InvalidArgument("view instance schema must equal X");
  }
  if (t.arity() != v.arity()) {
    return Status::InvalidArgument("tuple arity does not match view");
  }
  for (const Value& val : t.values()) {
    if (val.is_null()) {
      return Status::InvalidArgument("inserted tuple must be null-free");
    }
  }
  return Status::OK();
}

}  // namespace

Result<InsertionReport> CheckInsertion(const AttrSet& universe,
                                       const FDSet& fds, const AttrSet& x,
                                       const AttrSet& y, const Relation& v,
                                       const Tuple& t,
                                       const InsertionOptions& opts) {
  RELVIEW_RETURN_IF_ERROR(ValidateViewArgs(universe, x, y, v, t));
  InsertionReport report;

  if (v.ContainsRow(t)) {
    report.verdict = TranslationVerdict::kIdentity;
    return report;
  }

  const Schema& vs = v.schema();
  const AttrSet common = x & y;

  // Condition (a): t[X∩Y] appears in pi_{X∩Y}(V). Collect the mu
  // candidates (rows matching t on the common part) on the way.
  std::vector<int> mu_rows;
  for (int i = 0; i < v.size(); ++i) {
    if (v.row(i).AgreesWith(t, vs, common)) mu_rows.push_back(i);
  }
  if (mu_rows.empty()) {
    report.verdict = TranslationVerdict::kFailsComplementMembership;
    return report;
  }

  // Condition (b): one (possibly cached) closure answers both superkey
  // questions.
  const AttrSet common_closure = opts.closure_cache != nullptr
                                     ? opts.closure_cache->Closure(fds, common)
                                     : fds.Closure(common);
  if (x.SubsetOf(common_closure)) {
    // V ∪ t would violate the implied FD X∩Y -> X (t agrees with a mu row
    // on X∩Y but differs somewhere in X since t ∉ V).
    report.verdict = TranslationVerdict::kFailsCommonPartKeyOfX;
    return report;
  }
  if (!y.SubsetOf(common_closure)) {
    report.verdict = TranslationVerdict::kFailsCommonPartNotKeyOfY;
    return report;
  }

  // Condition (c).
  ChaseTestOptions copts;
  copts.backend = opts.backend;
  copts.reuse_base_chase = opts.reuse_base_chase;
  copts.closure_cache = opts.closure_cache;
  const ChaseTestResult c =
      RunConditionC(universe, fds, x, y, v, t, mu_rows, copts);
  report.chases_run = c.chases_run;
  report.stats = c.stats;
  if (!c.ok) {
    report.verdict = TranslationVerdict::kFailsChase;
    report.violated_fd = c.violated_fd;
    report.witness_row = c.witness_row;
    report.witness_tuple = v.row(c.witness_row);
    if (c.witness_mu >= 0) report.witness_mu_tuple = v.row(c.witness_mu);
    return report;
  }
  report.verdict = TranslationVerdict::kTranslatable;
  return report;
}

Result<Relation> ApplyInsertion(const AttrSet& universe, const AttrSet& x,
                                const AttrSet& y, const Relation& r,
                                const Tuple& t) {
  if (r.attrs() != universe) {
    return Status::InvalidArgument("database instance must be over U");
  }
  if ((x | y) != universe) {
    return Status::InvalidArgument("X ∪ Y must equal U");
  }
  // t * pi_Y(R): extend t with the Y-part of the rows matching t on X∩Y.
  Relation tx(x);
  tx.AddRow(t);
  const Relation ty = Relation::NaturalJoin(tx, r.Project(y));
  if (ty.empty()) {
    return Status::FailedPrecondition(
        "t matches no complement row: insertion not translatable "
        "(condition (a))");
  }
  return Relation::Union(r, ty);
}

}  // namespace relview
