// The incremental translatability engine: persistent indexes over a cached
// view instance plus a cached base-chase fixpoint, maintained across a
// stream of updates against one bound database.
//
// The from-scratch checks (insertion.cc / deletion.cc / replacement.cc)
// pay, per call: re-projecting pi_X(R), scanning V once per FD for
// candidate violators and once for mu rows, rebuilding the generic
// instance, and re-chasing it. On a sustained stream all of that is
// redundant — an accepted update changes V by exactly one row (+t, −t, or
// −t1+t2, by the shape of the Apply* translations), so this file keeps:
//
//  * ViewIndex — the canonical view relation (same sorted/deduped order
//    Project() produces, so witness row numbers match the scratch path
//    exactly) with a hash index on X∩Y projections (O(1) mu lookup,
//    condition (a)) and one hash index per distinct FD lhs∩X pattern
//    (output-sensitive candidate enumeration for condition (c)). Rows own
//    stable *slot* ids that survive edits; position<->slot maps are fixed
//    up in O(|V|) ints per accepted update instead of rebuilding the
//    indexes.
//
//  * BaseChaseCache — the chase fixpoint of the generic instance (slot-
//    keyed nulls) plus its rename map, maintained under every accepted
//    write by re-chasing only the affected *connected component*. Chase
//    steps only merge values and merges are never undone, so rows that
//    ever took a step together still agree on that FD's lhs in the
//    fixpoint: per-FD hash buckets over the fixpoint rows' lhs
//    projections therefore give a conservative superset of the real
//    interaction graph, and merges never cross components (null classes
//    never contain constants — U−X cells start as nulls and FD steps only
//    equate same-column cells). An accepted insert appends the new seed
//    row and re-chases its component; an accepted delete excises the row
//    and re-chases the survivors of its component from their pristine
//    seeds; replacements compose the two. The spliced state is reachable
//    from the new generic instance (component steps and outside steps
//    touch disjoint rows and values) and no step applies across the
//    splice, so by Church-Rosser it *is* the chase fixpoint — verdicts
//    match a from-scratch rebuild exactly.
//
//  * TranslatabilityEngine — the drop-in Check/Notify pair ViewTranslator
//    uses when TranslatorOptions.incremental is on. Checks return reports
//    identical (verdict, witness) to the free functions; probes go through
//    chase_test.h's RunProbeSpecs, optionally screened by the sound pair
//    closure criterion and fanned out over a thread pool.

#ifndef RELVIEW_VIEW_VIEW_INDEX_H_
#define RELVIEW_VIEW_VIEW_INDEX_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "chase/instance_chase.h"
#include "deps/closure_cache.h"
#include "deps/fd_set.h"
#include "relational/relation.h"
#include "relational/store.h"
#include "util/status.h"
#include "util/thread_pool.h"
#include "view/chase_test.h"
#include "view/deletion.h"
#include "view/insertion.h"
#include "view/replacement.h"

namespace relview {

/// Persistent indexes over one view instance. Positions are indexes into
/// the canonical row order (identical to Relation::Project output); slots
/// are stable row identities used to key labeled nulls. The instance
/// itself lives behind the InstanceStore interface (store.h): the row
/// store is the reference implementation, the columnar store keeps each
/// attribute as a contiguous dictionary-coded vector. Both maintain the
/// same canonical order, so positions and witnesses agree store-for-store.
class ViewIndex {
 public:
  ViewIndex() = default;

  /// Builds from a canonical (normalized) view instance over x.
  static ViewIndex Build(const AttrSet& universe, const AttrSet& x,
                         const AttrSet& common, const FDSet& fds,
                         Relation view,
                         StoreKind store = StoreKind::kRowHash);

  const Schema& schema() const {
    static const Schema kEmpty;
    return store_ ? store_->schema() : kEmpty;
  }
  const AttrSet& attrs() const { return schema().attrs(); }
  int size() const { return store_ ? store_->size() : 0; }
  StoreKind store_kind() const {
    return store_ ? store_->kind() : StoreKind::kRowHash;
  }

  /// Row at a canonical position, materialized as a Tuple.
  Tuple RowAt(int pos) const { return store_->RowAt(pos); }
  /// Cell of a canonical position (cheaper than RowAt for single cells).
  Value CellAt(int pos, AttrId a) const {
    return store_->At(pos, schema().PosOf(a));
  }
  /// The whole instance as a Relation (canonical order preserved).
  Relation MaterializeView() const {
    return store_ ? store_->Materialize() : Relation();
  }
  /// Resident bytes of the backing store.
  size_t StoreMemoryBytes() const {
    return store_ ? store_->MemoryBytes() : 0;
  }

  /// Position of t in the canonical order, -1 if absent. O(log |V|).
  int PositionOf(const Tuple& t) const;
  bool Contains(const Tuple& t) const { return PositionOf(t) >= 0; }

  int slot_at(int pos) const { return slot_of_pos_[pos]; }
  /// Null-id base of a slot; cell w of that row is base + null_offsets()[w].
  uint32_t SlotNullBase(int slot) const {
    return static_cast<uint32_t>(slot) * static_cast<uint32_t>(null_width_);
  }
  const std::vector<int>& null_offsets() const { return null_offsets_; }
  int null_width() const { return null_width_; }
  /// Number of slot ids ever allocated (bounds null-id bases).
  int slot_count() const { return static_cast<int>(pos_of_slot_.size()); }
  int slot_pos(int slot) const { return pos_of_slot_[slot]; }

  /// Ascending positions of rows agreeing with t on X∩Y (the mu rows).
  void MuPositions(const Tuple& t, std::vector<int>* out) const;
  /// Ascending positions of rows agreeing with t on fds[fd_index].lhs∩X.
  void CandidatePositions(int fd_index, const Tuple& t,
                          std::vector<int>* out) const;

  /// Incremental maintenance for an accepted insert/delete of t. Insert
  /// returns the new row's (position, slot); delete frees t's slot.
  std::pair<int, int> ApplyInsert(const Tuple& t);
  void ApplyDelete(const Tuple& t);

 private:
  struct SubIndex {
    AttrSet cols;  // projection the bucket keys hash
    std::unordered_map<uint64_t, std::vector<int>> buckets;  // hash -> slots
  };

  void AddSlot(int slot, int pos);
  void RemoveSlot(int slot, int pos);
  void CollectAgreeing(const SubIndex& sub, const Tuple& t,
                       std::vector<int>* out) const;

  std::unique_ptr<InstanceStore> store_;
  AttrSet x_;
  std::vector<SubIndex> subs_;     // subs_[0] keys X∩Y (the mu index)
  std::vector<int> fd_subindex_;   // fd index -> subs_ index, -1 = lhs∩X = ∅
  std::vector<int> slot_of_pos_;
  std::vector<int> pos_of_slot_;   // -1 = free slot
  std::vector<int> free_slots_;
  std::vector<int> null_offsets_;  // AttrId -> offset, -1 outside U − X
  int null_width_ = 0;
};

/// Cached chase fixpoint of the slot-keyed generic instance.
class BaseChaseCache {
 public:
  bool valid() const { return valid_; }
  bool conflict() const { return conflict_; }
  void Invalidate();

  /// Chases the generic instance of `index`'s current view from scratch.
  void Rebuild(const ViewIndex& index, const FDSet& fds,
               ChaseBackend backend, ChaseTestResult* acc);
  /// Folds one freshly inserted row (at `pos`, with stable id `slot`) into
  /// the fixpoint: append its seed row, then re-chase only its connected
  /// component from pristine seeds and splice the result. Requires
  /// valid() && !conflict(); degrades to Invalidate() on a (theoretically
  /// impossible after an accepted insert) chase conflict.
  void ExtendWith(const ViewIndex& index, int pos, int slot,
                  const FDSet& fds, ChaseBackend backend,
                  ChaseTestResult* acc);
  /// Excises the fixpoint row of view position `pos` in place: re-chases
  /// the surviving rows of its connected component from their pristine
  /// seeds and splices them over (an isolated row is simply erased).
  /// Returns false without touching the cache when it is unusable, or
  /// after Invalidate() on an unexpected chase conflict. Call before the
  /// row leaves the view index.
  bool TryRemove(const ViewIndex& index, int pos, const FDSet& fds,
                 ChaseBackend backend, ChaseTestResult* acc);

  BaseChaseView AsView() const { return BaseChaseView{&fixpoint_, &renames_}; }

  /// Monotonic version of the cached fixpoint: bumped by every mutation
  /// (Rebuild, ExtendWith, TryRemove, Invalidate). The engine keys its
  /// columnar probe index off this, so the frozen CodeProbeIndex is
  /// rebuilt exactly when the fixpoint it froze has changed.
  uint64_t version() const { return version_; }

  /// Cumulative fixpoint rows re-chased by component splices (provenance /
  /// telemetry; monotonic, survives Invalidate()).
  uint64_t rechased_rows() const { return rechased_rows_; }
  /// Largest single component a splice ever touched.
  uint64_t max_component() const { return max_component_; }

 private:
  void IndexRow(const FDSet& fds, int row);
  void UnindexRow(const FDSet& fds, int row);
  void EraseRow(int row);
  /// Ascending row indexes of `row`'s connected component under the
  /// bucket graph (rows sharing an lhs hash bucket for any FD).
  std::vector<int> ComponentOf(const FDSet& fds, int row) const;
  /// Re-chases the component's rows (minus `erase_row`, if >= 0) from
  /// their slot-keyed seeds, splices rows and renames back in, and erases
  /// `erase_row`. False + Invalidate() on chase conflict.
  bool SpliceRechase(const ViewIndex& index, const FDSet& fds,
                     ChaseBackend backend, const std::vector<int>& comp,
                     int erase_row, ChaseTestResult* acc);

  bool valid_ = false;
  bool conflict_ = false;
  Relation fixpoint_;
  std::unordered_map<uint32_t, Value> renames_;
  std::vector<int> slot_of_row_;
  std::vector<int> row_of_slot_;  // -1 = absent
  /// Per-FD hash buckets over the fixpoint rows' lhs projections, holding
  /// slot ids. Rows that ever took a chase step together agreed on that
  /// FD's lhs then and merges are never undone, so they share a bucket
  /// now: bucket connectivity is a conservative superset of the real
  /// interaction graph (hash aliasing only enlarges components).
  std::vector<std::unordered_map<uint64_t, std::vector<int>>> fd_buckets_;
  uint64_t version_ = 0;
  uint64_t rechased_rows_ = 0;
  uint64_t max_component_ = 0;
};

struct EngineConfig {
  ChaseBackend backend = ChaseBackend::kHash;
  /// View-instance storage layout (row reference store or columnar).
  StoreKind store = StoreKind::kRowHash;
  /// Probe-loop fan-out; 1 = sequential, n > 1 spins up a pool of n.
  int probe_threads = 1;
  /// Screen probes with Test 1's closure criterion (sound; chase_test.h).
  bool pair_screen = true;
  size_t closure_cache_capacity = ClosureCache::kDefaultCapacity;
};

/// X-macro over EngineStats' uint64_t counters. ServiceMetrics' gauge
/// array and the telemetry exposition iterate this list, so a field added
/// here flows into every export automatically instead of being silently
/// dropped by a hand-maintained index map.
#define RELVIEW_ENGINE_STAT_FIELDS(X)                                     \
  /* Checks answered from a live index vs. index (re)builds. */           \
  X(index_reuses)                                                         \
  X(index_rebuilds)                                                       \
  /* Base-chase fixpoint: reused as-is / rebuilt from scratch / extended  \
     in place by an inserted row / shrunk in place by a deleted row (both \
     re-chase only the affected connected component). */                  \
  X(base_reuses)                                                          \
  X(base_rebuilds)                                                        \
  X(base_extends)                                                         \
  X(base_shrinks)                                                         \
  /* Probe accounting (mirrors ChaseTestResult, accumulated). */          \
  X(probes_run)                                                           \
  X(probes_screened)                                                      \
  X(probes_parallel)                                                      \
  /* Closure-cache counters (snapshot of the engine's shared cache). */   \
  X(closure_hits)                                                         \
  X(closure_misses)                                                       \
  /* Component-scoped maintenance: total fixpoint rows re-chased by       \
     splice maintenance, and the largest single component touched. */     \
  X(component_rows_rechased)                                              \
  X(max_component_size)                                                   \
  /* Columnar probe-index lifecycle: builds when the base fixpoint        \
     version moved, reuses when a check ran against a cached index. */    \
  X(probe_index_builds)                                                   \
  X(probe_index_reuses)

struct EngineStats {
#define RELVIEW_ENGINE_DEFINE_FIELD(name) uint64_t name = 0;
  RELVIEW_ENGINE_STAT_FIELDS(RELVIEW_ENGINE_DEFINE_FIELD)
#undef RELVIEW_ENGINE_DEFINE_FIELD
  /// Derived: closure_hits / (closure_hits + closure_misses).
  double closure_hit_rate = 0.0;
};

/// Incremental counterpart of CheckInsertion/CheckDeletion/CheckReplacement
/// for a fixed (U, Sigma, X, Y) and an evolving bound database. Verdicts
/// and witnesses are identical to the free functions (tests/incremental_
/// test.cc holds this over random schemas and streams).
///
/// Concurrency contract: the engine (and ViewIndex/BaseChaseCache above)
/// is confined to the single writer thread — UpdateService serializes all
/// mutating calls behind its writer mutex, so there are no internal locks
/// and no RELVIEW_GUARDED_BY annotations here. The only internal
/// parallelism is the condition-(c) probe fan-out, which hands workers
/// disjoint read-only state plus one Mutex-guarded accumulator (see
/// RunProbeSpecsParallel in view/chase_test.cc). Effort counters shared
/// with telemetry scrapes live in ServiceMetrics as atomics, not here.
class TranslatabilityEngine {
 public:
  TranslatabilityEngine(const AttrSet& universe, const FDSet& fds,
                        const AttrSet& x, const AttrSet& y,
                        const EngineConfig& config);

  /// (Re)builds the view index from a full database instance. Called on
  /// Bind/InstallDatabase; accepted updates use the Notify* paths instead.
  void Rebuild(const Relation& database);

  /// The cached view instance, materialized from the backing store.
  Relation view() const { return index_.MaterializeView(); }

  Result<InsertionReport> CheckInsert(const Tuple& t);
  Result<DeletionReport> CheckDelete(const Tuple& t);
  Result<ReplacementReport> CheckReplace(const Tuple& t1, const Tuple& t2);

  /// Incremental maintenance after the translator applied an accepted,
  /// non-identity update.
  void NotifyInsert(const Tuple& t);
  void NotifyDelete(const Tuple& t);
  void NotifyReplace(const Tuple& t1, const Tuple& t2);

  EngineStats stats() const;
  ClosureCache* closure_cache() { return &closures_; }

 private:
  /// Condition (c) over the index: enumerate (fd, r, mu) specs from the
  /// candidate indexes and run them through RunProbeSpecs against the
  /// cached base fixpoint.
  void RunC(const Tuple& t, const std::vector<int>& mu_positions,
            bool iterate_all_mus, int skip_row, ChaseTestResult* out);
  void EnsureBase(ChaseTestResult* acc);
  Status ValidateTuple(const Tuple& t, bool must_be_null_free) const;

  AttrSet universe_;
  FDSet fds_;  // owned copy: the engine must survive translator moves
  AttrSet x_, y_, common_, y_only_;
  EngineConfig config_;
  ViewIndex index_;
  BaseChaseCache base_;
  /// Frozen delta-probe index over the cached base fixpoint (columnar
  /// backend only), keyed by the fixpoint version it was built from.
  CodeProbeIndex probe_index_;
  uint64_t probe_index_version_ = 0;
  bool probe_index_valid_ = false;
  ClosureCache closures_;
  std::unique_ptr<ThreadPool> pool_;
  EngineStats stats_;
};

}  // namespace relview

#endif  // RELVIEW_VIEW_VIEW_INDEX_H_
