#include "framework/bs_framework.h"

#include <map>
#include <numeric>
#include <set>
#include <utility>

namespace relview {

FiniteMapping FiniteMapping::Compose(const FiniteMapping& g,
                                     const FiniteMapping& f) {
  std::vector<int> image(f.domain_size());
  for (int s = 0; s < f.domain_size(); ++s) image[s] = g(f(s));
  return FiniteMapping(std::move(image), g.range_size());
}

FiniteMapping FiniteMapping::Identity(int n) {
  std::vector<int> image(n);
  std::iota(image.begin(), image.end(), 0);
  return FiniteMapping(std::move(image), n);
}

FiniteMapping FiniteMapping::FromLabels(const std::vector<int>& labels) {
  std::map<int, int> dense;
  std::vector<int> image(labels.size());
  for (size_t i = 0; i < labels.size(); ++i) {
    auto [it, inserted] =
        dense.emplace(labels[i], static_cast<int>(dense.size()));
    image[i] = it->second;
  }
  return FiniteMapping(std::move(image), static_cast<int>(dense.size()));
}

bool IsComplementOf(const FiniteMapping& v, const FiniteMapping& vc) {
  if (v.domain_size() != vc.domain_size()) return false;
  std::set<std::pair<int, int>> seen;
  for (int s = 0; s < v.domain_size(); ++s) {
    if (!seen.emplace(v(s), vc(s)).second) return false;
  }
  return true;
}

std::optional<FiniteMapping> TranslateUnderConstantComplement(
    const FiniteMapping& v, const FiniteMapping& vc, const FiniteMapping& u) {
  const int n = v.domain_size();
  // Invert v × vc.
  std::map<std::pair<int, int>, int> inverse;
  for (int s = 0; s < n; ++s) {
    if (!inverse.emplace(std::make_pair(v(s), vc(s)), s).second) {
      return std::nullopt;  // vc is not a complement of v
    }
  }
  std::vector<int> image(n);
  for (int s = 0; s < n; ++s) {
    const auto it = inverse.find({u(v(s)), vc(s)});
    if (it == inverse.end()) return std::nullopt;  // u not vc-translatable
    image[s] = it->second;
  }
  return FiniteMapping(std::move(image), n);
}

bool IsConsistentTranslation(const FiniteMapping& v, const FiniteMapping& u,
                             const FiniteMapping& tu) {
  for (int s = 0; s < v.domain_size(); ++s) {
    if (v(tu(s)) != u(v(s))) return false;
  }
  return true;
}

bool IsAcceptableTranslation(const FiniteMapping& v, const FiniteMapping& u,
                             const FiniteMapping& tu) {
  for (int s = 0; s < v.domain_size(); ++s) {
    if (u(v(s)) == v(s) && tu(s) != s) return false;
  }
  return true;
}

bool IsMorphismOnPair(const FiniteMapping& tu, const FiniteMapping& tw,
                      const FiniteMapping& tuw) {
  // T_{uw}(s) must equal T_u(T_w(s)). (The paper's composition order:
  // applying w then u on the view corresponds to T_w then T_u.)
  for (int s = 0; s < tu.domain_size(); ++s) {
    if (tuw(s) != tu(tw(s))) return false;
  }
  return true;
}

namespace {

class UnionFind {
 public:
  explicit UnionFind(int n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }
  int Find(int a) {
    while (parent_[a] != a) {
      parent_[a] = parent_[parent_[a]];
      a = parent_[a];
    }
    return a;
  }
  void Union(int a, int b) { parent_[Find(a)] = Find(b); }

 private:
  std::vector<int> parent_;
};

}  // namespace

std::optional<FiniteMapping> ComplementFromTranslator(
    const FiniteMapping& v,
    const std::vector<std::pair<FiniteMapping, FiniteMapping>>& updates) {
  const int n = v.domain_size();
  // Canonical complement: label states by their orbit under the
  // translations {T_u}. Every T_u then holds the label constant.
  UnionFind uf(n);
  for (const auto& [u, tu] : updates) {
    if (!IsConsistentTranslation(v, u, tu) ||
        !IsAcceptableTranslation(v, u, tu)) {
      return std::nullopt;
    }
    for (int s = 0; s < n; ++s) uf.Union(s, tu(s));
  }
  std::vector<int> labels(n);
  for (int s = 0; s < n; ++s) labels[s] = uf.Find(s);
  FiniteMapping vc = FiniteMapping::FromLabels(labels);

  // Validate: vc is a complement and reproduces every T_u.
  if (!IsComplementOf(v, vc)) return std::nullopt;
  for (const auto& [u, tu] : updates) {
    auto derived = TranslateUnderConstantComplement(v, vc, u);
    if (!derived.has_value() || !(*derived == tu)) return std::nullopt;
  }
  return vc;
}

}  // namespace relview
