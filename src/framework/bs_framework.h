// The Bancilhon–Spyratos constant-complement framework ([3, 31] in the
// paper; recapped as facts (i) and (ii) in the paper's introduction),
// instantiated over *finite, enumerated* state spaces so every property is
// machine-checkable:
//
//   * a view is a mapping v from database states to view states;
//   * a complement v' of v makes s -> (v(s), v'(s)) one-to-one;
//   * a view update u is translatable under constant v' when for every
//     state s there is a (then unique) s' with v(s') = u(v(s)) and
//     v'(s') = v'(s); the translation is T_u = (v × v')⁻¹ ∘ (uv × v');
//   * fact (i): T_u is consistent (v ∘ T_u = u ∘ v) and acceptable
//     (u(v(s)) = v(s) implies T_u(s) = s);
//   * fact (ii): over a reasonable update set U, u -> T_u is a morphism
//     (T_{uw} = T_u ∘ T_w), and conversely every consistent, acceptable
//     morphism arises from some constant complement.
//
// The relational tests instantiate this with states = legal instances over
// a tiny universe and v = pi_X, tying the abstract theory to the paper's
// concrete setting.

#ifndef RELVIEW_FRAMEWORK_BS_FRAMEWORK_H_
#define RELVIEW_FRAMEWORK_BS_FRAMEWORK_H_

#include <optional>
#include <vector>

#include "util/status.h"

namespace relview {

/// A total function between finite sets {0..n-1} -> {0..range-1}.
class FiniteMapping {
 public:
  FiniteMapping() = default;
  FiniteMapping(std::vector<int> image, int range)
      : image_(std::move(image)), range_(range) {}

  int operator()(int s) const { return image_[s]; }
  int domain_size() const { return static_cast<int>(image_.size()); }
  int range_size() const { return range_; }
  const std::vector<int>& image() const { return image_; }

  /// g ∘ f (apply f first). Requires f's range to fit g's domain.
  static FiniteMapping Compose(const FiniteMapping& g,
                               const FiniteMapping& f);

  /// Identity on n states.
  static FiniteMapping Identity(int n);

  /// Canonicalizes an arbitrary labeling into a dense range.
  static FiniteMapping FromLabels(const std::vector<int>& labels);

  bool operator==(const FiniteMapping& o) const {
    return image_ == o.image_;
  }

 private:
  std::vector<int> image_;
  int range_ = 0;
};

/// True iff s -> (v(s), vc(s)) is injective — vc is a complement of v.
bool IsComplementOf(const FiniteMapping& v, const FiniteMapping& vc);

/// The translation of view update u (a mapping on v's range) under
/// constant complement vc. Returns nullopt if u is not vc-translatable
/// (some state has no consistent target).
std::optional<FiniteMapping> TranslateUnderConstantComplement(
    const FiniteMapping& v, const FiniteMapping& vc, const FiniteMapping& u);

/// Fact (i) checks.
bool IsConsistentTranslation(const FiniteMapping& v, const FiniteMapping& u,
                             const FiniteMapping& tu);
bool IsAcceptableTranslation(const FiniteMapping& v, const FiniteMapping& u,
                             const FiniteMapping& tu);

/// Fact (ii): T is a morphism on the given update pairs, i.e.
/// T(u ∘ w) == T(u) ∘ T(w) for the supplied triples.
bool IsMorphismOnPair(const FiniteMapping& tu, const FiniteMapping& tw,
                      const FiniteMapping& tuw);

/// Converse of fact (ii): given a consistent+acceptable morphism T over
/// updates U (as (u, T_u) pairs), constructs a complement mapping vc such
/// that every u is vc-translatable with translation T_u. The construction
/// labels states by their orbit under {T_u} intersected with view-fibers
/// (the canonical complement of [3]); returns nullopt when T is not in
/// fact consistent/acceptable for some pair.
std::optional<FiniteMapping> ComplementFromTranslator(
    const FiniteMapping& v,
    const std::vector<std::pair<FiniteMapping, FiniteMapping>>& updates);

}  // namespace relview

#endif  // RELVIEW_FRAMEWORK_BS_FRAMEWORK_H_
