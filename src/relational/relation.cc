#include "relational/relation.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

namespace relview {

void Relation::AddRow(Tuple t) {
  RELVIEW_DCHECK(t.arity() == arity(), "row arity mismatch");
  rows_.push_back(std::move(t));
}

Status Relation::AddRowNamed(
    const std::vector<std::pair<AttrId, Value>>& cells) {
  if (static_cast<int>(cells.size()) != arity()) {
    return Status::InvalidArgument("AddRowNamed: wrong number of cells");
  }
  Tuple t(arity());
  AttrSet seen;
  for (const auto& [attr, value] : cells) {
    if (!schema_.Contains(attr)) {
      return Status::InvalidArgument("AddRowNamed: attribute not in schema");
    }
    if (seen.Contains(attr)) {
      return Status::InvalidArgument("AddRowNamed: duplicate attribute");
    }
    seen.Add(attr);
    t[schema_.PosOf(attr)] = value;
  }
  rows_.push_back(std::move(t));
  return Status::OK();
}

void Relation::Normalize() {
  std::sort(rows_.begin(), rows_.end());
  rows_.erase(std::unique(rows_.begin(), rows_.end()), rows_.end());
}

bool Relation::SameAs(const Relation& other) const {
  if (schema_ != other.schema_) return false;
  Relation a = *this;
  Relation b = other;
  a.Normalize();
  b.Normalize();
  return a.rows_ == b.rows_;
}

bool Relation::ContainsRow(const Tuple& t) const {
  for (const Tuple& r : rows_) {
    if (r == t) return true;
  }
  return false;
}

Relation Relation::Project(const AttrSet& x) const {
  RELVIEW_DCHECK(x.SubsetOf(attrs()), "projection outside schema");
  Relation out(x);
  const Schema& to = out.schema();
  out.rows_.reserve(rows_.size());
  for (const Tuple& r : rows_) {
    out.rows_.push_back(r.Project(schema_, to));
  }
  out.Normalize();
  return out;
}

Relation Relation::NaturalJoin(const Relation& left, const Relation& right) {
  const AttrSet shared = left.attrs() & right.attrs();
  Relation out(left.attrs() | right.attrs());
  const Schema& os = out.schema();

  // Bucket the right side by its shared-attribute projection.
  std::unordered_map<uint64_t, std::vector<int>> buckets;
  buckets.reserve(right.rows_.size() * 2 + 1);
  for (int i = 0; i < right.size(); ++i) {
    buckets[right.rows_[i].HashOn(right.schema_, shared)].push_back(i);
  }

  for (const Tuple& l : left.rows_) {
    auto it = buckets.find(l.HashOn(left.schema_, shared));
    if (it == buckets.end()) continue;
    for (int ri : it->second) {
      const Tuple& r = right.rows_[ri];
      // Hash collision guard: verify actual agreement.
      bool match = true;
      shared.ForEach([&](AttrId a) {
        if (l.At(left.schema_, a) != r.At(right.schema_, a)) match = false;
      });
      if (!match) continue;
      Tuple joined(os.arity());
      out.attrs().ForEach([&](AttrId a) {
        joined.Set(os, a,
                   left.schema_.Contains(a) ? l.At(left.schema_, a)
                                            : r.At(right.schema_, a));
      });
      out.rows_.push_back(std::move(joined));
    }
  }
  out.Normalize();
  return out;
}

Result<Relation> Relation::Union(const Relation& a, const Relation& b) {
  if (a.schema_ != b.schema_) {
    return Status::InvalidArgument("Union: schema mismatch");
  }
  Relation out = a;
  out.rows_.insert(out.rows_.end(), b.rows_.begin(), b.rows_.end());
  out.Normalize();
  return out;
}

Result<Relation> Relation::Difference(const Relation& a, const Relation& b) {
  if (a.schema_ != b.schema_) {
    return Status::InvalidArgument("Difference: schema mismatch");
  }
  std::unordered_set<Tuple, TupleHash> bset(b.rows_.begin(), b.rows_.end());
  Relation out(a.schema_);
  for (const Tuple& r : a.rows_) {
    if (!bset.count(r)) out.rows_.push_back(r);
  }
  out.Normalize();
  return out;
}

Relation Relation::Select(
    const std::function<bool(const Tuple&)>& pred) const {
  Relation out(schema_);
  for (const Tuple& r : rows_) {
    if (pred(r)) out.rows_.push_back(r);
  }
  return out;
}

Result<Relation> Relation::Product(const Relation& a, const Relation& b) {
  if (a.attrs().Intersects(b.attrs())) {
    return Status::InvalidArgument("Product: schemas must be disjoint");
  }
  return NaturalJoin(a, b);  // Natural join over disjoint schemas.
}

int Relation::RenameValue(Value from, Value to) {
  int changed = 0;
  for (Tuple& r : rows_) {
    for (int i = 0; i < r.arity(); ++i) {
      if (r[i] == from) {
        r[i] = to;
        ++changed;
      }
    }
  }
  return changed;
}

bool Relation::HasNulls() const {
  for (const Tuple& r : rows_) {
    for (const Value& v : r.values()) {
      if (v.is_null()) return true;
    }
  }
  return false;
}

std::string Relation::ToString(const Universe* u,
                               const ValuePool* pool) const {
  std::string out;
  // Header.
  for (int i = 0; i < arity(); ++i) {
    if (i) out += "\t";
    AttrId a = schema_.cols()[i];
    out += (u != nullptr) ? u->Name(a) : ("A" + std::to_string(a));
  }
  out += "\n";
  for (const Tuple& r : rows_) {
    for (int i = 0; i < arity(); ++i) {
      if (i) out += "\t";
      out += (pool != nullptr) ? pool->NameOf(r[i]) : r[i].ToString();
    }
    out += "\n";
  }
  return out;
}

}  // namespace relview
