// Loading and saving relation instances as delimited text. The first line
// names the attributes; every following line is a row. Values are
// interned into a caller-provided ValuePool, so round-trips preserve
// names.

#ifndef RELVIEW_RELATIONAL_CSV_H_
#define RELVIEW_RELATIONAL_CSV_H_

#include <iosfwd>
#include <string>

#include "relational/relation.h"
#include "relational/universe.h"
#include "util/status.h"

namespace relview {

struct CsvResult {
  /// The universe built from (or matched against) the header.
  Universe universe;
  Relation relation{AttrSet()};
};

/// Parses a delimited table. `delims` lists accepted separators (any of
/// them splits; runs collapse). When `universe` is supplied the header
/// must name a subset of its attributes (the relation is built over those
/// columns); otherwise a fresh universe is created from the header.
Result<CsvResult> ReadTable(std::istream& in, ValuePool* pool,
                            const Universe* universe = nullptr,
                            const std::string& delims = ",; \t");

/// Convenience: parse from a string.
Result<CsvResult> ReadTableFromString(const std::string& text,
                                      ValuePool* pool,
                                      const Universe* universe = nullptr,
                                      const std::string& delims = ",; \t");

/// Writes `r` with a header line, tab-separated.
void WriteTable(std::ostream& out, const Relation& r, const Universe& u,
                const ValuePool& pool);

}  // namespace relview

#endif  // RELVIEW_RELATIONAL_CSV_H_
