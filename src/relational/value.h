// Value: a cell of a relation instance. Either an interned *constant*
// (visible data) or a *labeled null* (a placeholder introduced when the
// view's rows are extended with unknown complement columns — the "new
// symbols" of the paper's R(V, t, r, f) construction).
//
// Values are 32-bit ids; the high bit tags nulls. Equality is id equality,
// which makes the chase's "equate two symbols" a cheap renaming.

#ifndef RELVIEW_RELATIONAL_VALUE_H_
#define RELVIEW_RELATIONAL_VALUE_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/status.h"

namespace relview {

class Value {
 public:
  static constexpr uint32_t kNullTag = 0x80000000u;

  /// Default: constant 0.
  constexpr Value() : raw_(0) {}

  static constexpr Value Const(uint32_t id) { return Value(id); }
  static constexpr Value Null(uint32_t id) { return Value(id | kNullTag); }

  bool is_null() const { return raw_ & kNullTag; }
  bool is_const() const { return !is_null(); }
  /// Index within the constant or null space (tag stripped).
  uint32_t index() const { return raw_ & ~kNullTag; }
  uint32_t raw() const { return raw_; }

  bool operator==(const Value& o) const { return raw_ == o.raw_; }
  bool operator!=(const Value& o) const { return raw_ != o.raw_; }
  bool operator<(const Value& o) const { return raw_ < o.raw_; }

  /// "c<i>" for constants, "?<i>" for labeled nulls.
  std::string ToString() const {
    return (is_null() ? "?" : "c") + std::to_string(index());
  }

 private:
  explicit constexpr Value(uint32_t raw) : raw_(raw) {}
  uint32_t raw_;
};

struct ValueHash {
  size_t operator()(const Value& v) const { return v.raw() * 0x9E3779B1u; }
};

/// Optional registry of human-readable constant names for examples and
/// pretty-printing. Algorithms never require a pool.
class ValuePool {
 public:
  /// Returns the constant for `name`, interning it on first use.
  Value Intern(const std::string& name) {
    auto it = ids_.find(name);
    if (it != ids_.end()) return Value::Const(it->second);
    uint32_t id = static_cast<uint32_t>(names_.size());
    names_.push_back(name);
    ids_.emplace(name, id);
    return Value::Const(id);
  }

  /// Name of a constant; falls back to Value::ToString for unknown ids and
  /// for nulls.
  std::string NameOf(Value v) const {
    if (v.is_const() && v.index() < names_.size()) return names_[v.index()];
    return v.ToString();
  }

  int size() const { return static_cast<int>(names_.size()); }

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, uint32_t> ids_;
};

}  // namespace relview

#endif  // RELVIEW_RELATIONAL_VALUE_H_
