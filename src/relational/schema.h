// Schema: an ordered view of an AttrSet. Columns are stored in ascending
// AttrId order, so two relations over the same attribute set always have
// identical column layouts (projections and joins need no permutation
// bookkeeping).

#ifndef RELVIEW_RELATIONAL_SCHEMA_H_
#define RELVIEW_RELATIONAL_SCHEMA_H_

#include <array>
#include <vector>

#include "relational/attr_set.h"
#include "util/status.h"

namespace relview {

class Schema {
 public:
  Schema() { positions_.fill(-1); }

  explicit Schema(const AttrSet& attrs) : attrs_(attrs) {
    positions_.fill(-1);
    attrs.ForEach([this](AttrId a) {
      positions_[a] = static_cast<int16_t>(cols_.size());
      cols_.push_back(a);
    });
  }

  const AttrSet& attrs() const { return attrs_; }
  /// Column attribute ids in storage (ascending) order.
  const std::vector<AttrId>& cols() const { return cols_; }
  int arity() const { return static_cast<int>(cols_.size()); }

  bool Contains(AttrId a) const { return attrs_.Contains(a); }

  /// Storage position of attribute `a`; -1 when absent.
  int PosOf(AttrId a) const { return positions_[a]; }

  bool operator==(const Schema& o) const { return attrs_ == o.attrs_; }
  bool operator!=(const Schema& o) const { return attrs_ != o.attrs_; }

 private:
  AttrSet attrs_;
  std::vector<AttrId> cols_;
  std::array<int16_t, AttrSet::kMaxAttrs> positions_;
};

}  // namespace relview

#endif  // RELVIEW_RELATIONAL_SCHEMA_H_
