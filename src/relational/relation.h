// Relation: an in-memory relation instance (schema + rows) with the
// relational-algebra operations the paper's constructions need: projection,
// natural join, union, difference, selection, and set-semantics
// normalization. Rows may contain labeled nulls (see Value); operations are
// agnostic to null-ness except where documented.

#ifndef RELVIEW_RELATIONAL_RELATION_H_
#define RELVIEW_RELATIONAL_RELATION_H_

#include <functional>
#include <string>
#include <vector>

#include "relational/schema.h"
#include "relational/tuple.h"
#include "relational/universe.h"
#include "relational/value.h"
#include "util/status.h"

namespace relview {

class Relation {
 public:
  Relation() = default;
  explicit Relation(const AttrSet& attrs) : schema_(attrs) {}
  explicit Relation(const Schema& schema) : schema_(schema) {}

  const Schema& schema() const { return schema_; }
  const AttrSet& attrs() const { return schema_.attrs(); }
  int arity() const { return schema_.arity(); }
  int size() const { return static_cast<int>(rows_.size()); }
  bool empty() const { return rows_.empty(); }

  const std::vector<Tuple>& rows() const { return rows_; }
  std::vector<Tuple>& mutable_rows() { return rows_; }
  const Tuple& row(int i) const { return rows_[i]; }
  Tuple& mutable_row(int i) { return rows_[i]; }

  /// Appends a row. Precondition: t.arity() == arity(). Duplicates are
  /// permitted until Normalize().
  void AddRow(Tuple t);

  /// Appends a row given (attr, value) pairs covering the whole schema.
  Status AddRowNamed(const std::vector<std::pair<AttrId, Value>>& cells);

  /// Sorts rows and removes duplicates (set semantics).
  void Normalize();

  /// Set equality (normalizes copies of both sides).
  bool SameAs(const Relation& other) const;

  bool ContainsRow(const Tuple& t) const;

  /// π_X(this). X must be a subset of attrs(). Result is normalized.
  Relation Project(const AttrSet& x) const;

  /// Natural join. Shared attributes are joined on; result schema is the
  /// union. Hash-based, O(|L| + |R| + |out|) expected.
  static Relation NaturalJoin(const Relation& left, const Relation& right);

  /// Union of two relations over identical schemas; normalized.
  static Result<Relation> Union(const Relation& a, const Relation& b);

  /// a \ b over identical schemas; normalized.
  static Result<Relation> Difference(const Relation& a, const Relation& b);

  /// Rows satisfying `pred`.
  Relation Select(const std::function<bool(const Tuple&)>& pred) const;

  /// Cartesian product (disjoint schemas).
  static Result<Relation> Product(const Relation& a, const Relation& b);

  /// Replaces every occurrence of value `from` with `to` (all columns).
  /// Returns the number of cells changed.
  int RenameValue(Value from, Value to);

  /// True iff some row contains a labeled null.
  bool HasNulls() const;

  /// Multi-line debug form; uses names from `u`/`pool` when provided.
  std::string ToString(const Universe* u = nullptr,
                       const ValuePool* pool = nullptr) const;

 private:
  Schema schema_;
  std::vector<Tuple> rows_;
};

}  // namespace relview

#endif  // RELVIEW_RELATIONAL_RELATION_H_
