#include "relational/column_store.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>

#include "util/small_util.h"

namespace relview {

namespace {

// Bump-parses one unsigned decimal token (skipping leading spaces/newlines
// is the caller's concern — the encoder emits single spaces and newlines,
// and strtoull skips leading whitespace including '\n').
bool ParseU64(const char** p, const char* end, uint64_t* out) {
  if (*p >= end) return false;
  char* next = nullptr;
  const uint64_t v = std::strtoull(*p, &next, 10);
  if (next == *p || next > end) return false;
  *p = next;
  *out = v;
  return true;
}

}  // namespace

Result<Dictionary> Dictionary::FromPage(const std::vector<uint32_t>& page) {
  Dictionary d;
  d.values_ = page;
  d.code_of_.reserve(page.size());
  for (size_t i = 0; i < page.size(); ++i) {
    auto [it, inserted] =
        d.code_of_.emplace(page[i], static_cast<uint32_t>(i));
    (void)it;
    if (!inserted) {
      return Status::Corruption("dictionary page has duplicate value");
    }
  }
  d.next_code_ = page.size();
  return d;
}

Result<ColumnStore> ColumnStore::FromRelation(const Relation& r) {
  ColumnStore cs(r.schema());
  for (Column& c : cs.columns_) c.codes.reserve(r.rows().size());
  for (const Tuple& t : r.rows()) {
    RELVIEW_RETURN_IF_ERROR(cs.AppendRow(t));
  }
  return cs;
}

Tuple ColumnStore::RowAt(int row) const {
  Tuple t(arity());
  for (int pos = 0; pos < arity(); ++pos) t[pos] = At(row, pos);
  return t;
}

Status ColumnStore::AppendRow(const Tuple& t) {
  if (t.arity() != arity()) {
    return Status::InvalidArgument("ColumnStore::AppendRow: arity mismatch");
  }
  for (int pos = 0; pos < arity(); ++pos) {
    Column& c = columns_[static_cast<size_t>(pos)];
    RELVIEW_ASSIGN_OR_RETURN(const uint32_t code, c.dict.Intern(t[pos]));
    c.codes.push_back(code);
  }
  ++rows_;
  return Status::OK();
}

int ColumnStore::CompareRow(int row, const Tuple& t) const {
  for (int pos = 0; pos < arity(); ++pos) {
    const uint32_t a = RawAt(row, pos);
    const uint32_t b = t[pos].raw();
    if (a < b) return -1;
    if (a > b) return 1;
  }
  return 0;
}

Result<int> ColumnStore::InsertRow(const Tuple& t) {
  if (t.arity() != arity()) {
    return Status::InvalidArgument("ColumnStore::InsertRow: arity mismatch");
  }
  // Binary search for the canonical position (first row >= t).
  int lo = 0, hi = rows_;
  while (lo < hi) {
    const int mid = lo + (hi - lo) / 2;
    if (CompareRow(mid, t) < 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  for (int pos = 0; pos < arity(); ++pos) {
    Column& c = columns_[static_cast<size_t>(pos)];
    RELVIEW_ASSIGN_OR_RETURN(const uint32_t code, c.dict.Intern(t[pos]));
    c.codes.insert(c.codes.begin() + lo, code);
  }
  ++rows_;
  return lo;
}

void ColumnStore::EraseRow(int row) {
  for (Column& c : columns_) {
    c.codes.erase(c.codes.begin() + row);
  }
  --rows_;
}

int ColumnStore::PositionOf(const Tuple& t) const {
  if (t.arity() != arity()) return -1;
  int lo = 0, hi = rows_;
  while (lo < hi) {
    const int mid = lo + (hi - lo) / 2;
    if (CompareRow(mid, t) < 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return (lo < rows_ && CompareRow(lo, t) == 0) ? lo : -1;
}

bool ColumnStore::RowAgrees(int row, const Tuple& t,
                            const std::vector<int>& pos) const {
  for (const int p : pos) {
    if (RawAt(row, p) != t[p].raw()) return false;
  }
  return true;
}

bool ColumnStore::FindFDViolation(const std::vector<int>& lhs_pos,
                                  int rhs_pos, int* row_a, int* row_b) const {
  // Group rows by their lhs code signature; the first group member is the
  // representative. A later member with a different rhs code is a
  // violation. Codes (not decoded values) suffice: within a column,
  // code equality ⇔ value equality.
  std::unordered_map<uint64_t, std::vector<int32_t>> groups;
  groups.reserve(static_cast<size_t>(rows_));
  const std::vector<uint32_t>& rhs = codes(rhs_pos);
  for (int i = 0; i < rows_; ++i) {
    uint64_t h = 0x5DEECE66DULL;
    for (const int p : lhs_pos) {
      h = HashCombine(h, codes(p)[static_cast<size_t>(i)]);
    }
    std::vector<int32_t>& bucket = groups[h];
    for (const int32_t j : bucket) {
      if (!RowsAgreeOn(j, i, lhs_pos)) continue;
      if (rhs[static_cast<size_t>(j)] != rhs[static_cast<size_t>(i)]) {
        *row_a = j;
        *row_b = i;
        return true;
      }
      // Same group, same rhs: keep only one member per true group by not
      // adding i (j already represents it for future comparisons against
      // this group's rhs).
    }
    bucket.push_back(i);
  }
  return false;
}

bool ColumnStore::RowsAgreeOn(int row_a, int row_b,
                              const std::vector<int>& pos) const {
  for (const int p : pos) {
    const std::vector<uint32_t>& col = codes(p);
    if (col[static_cast<size_t>(row_a)] != col[static_cast<size_t>(row_b)]) {
      return false;
    }
  }
  return true;
}

Relation ColumnStore::ToRelation() const {
  Relation r(schema_);
  for (int i = 0; i < rows_; ++i) r.AddRow(RowAt(i));
  return r;
}

size_t ColumnStore::MemoryBytes() const {
  size_t total = sizeof(*this);
  for (const Column& c : columns_) {
    total += c.codes.capacity() * sizeof(uint32_t) + c.dict.MemoryBytes();
  }
  return total;
}

void ColumnStore::EncodeTo(std::string* out) const {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "rvcols1 %d %d\n", arity(), rows_);
  out->append(buf);
  for (const Column& c : columns_) {
    std::snprintf(buf, sizeof(buf), "%zu", c.dict.page().size());
    out->append(buf);
    for (const uint32_t raw : c.dict.page()) {
      std::snprintf(buf, sizeof(buf), " %" PRIu32, raw);
      out->append(buf);
    }
    out->push_back('\n');
    bool first = true;
    for (const uint32_t code : c.codes) {
      std::snprintf(buf, sizeof(buf), first ? "%" PRIu32 : " %" PRIu32, code);
      out->append(buf);
      first = false;
    }
    out->push_back('\n');
  }
}

Result<ColumnStore> ColumnStore::Decode(const Schema& schema,
                                        const std::string& body) {
  const char* p = body.data();
  const char* end = body.data() + body.size();
  if (body.rfind("rvcols1 ", 0) != 0) {
    return Status::Corruption("columnar block: bad magic");
  }
  p += 7;  // past "rvcols1"; strtoull skips the following space
  uint64_t arity = 0, nrows = 0;
  if (!ParseU64(&p, end, &arity) || !ParseU64(&p, end, &nrows)) {
    return Status::Corruption("columnar block: bad header");
  }
  if (static_cast<int>(arity) != schema.arity()) {
    return Status::Corruption("columnar block: arity mismatch with schema");
  }
  ColumnStore cs(schema);
  for (int pos = 0; pos < cs.arity(); ++pos) {
    Column& c = cs.columns_[static_cast<size_t>(pos)];
    uint64_t dict_size = 0;
    if (!ParseU64(&p, end, &dict_size)) {
      return Status::Corruption("columnar block: bad dictionary header");
    }
    std::vector<uint32_t> page;
    page.reserve(dict_size);
    for (uint64_t i = 0; i < dict_size; ++i) {
      uint64_t raw = 0;
      if (!ParseU64(&p, end, &raw) || raw > UINT32_MAX) {
        return Status::Corruption("columnar block: bad dictionary entry");
      }
      page.push_back(static_cast<uint32_t>(raw));
    }
    RELVIEW_ASSIGN_OR_RETURN(c.dict, Dictionary::FromPage(page));
    c.codes.reserve(nrows);
    for (uint64_t i = 0; i < nrows; ++i) {
      uint64_t code = 0;
      if (!ParseU64(&p, end, &code) || code >= dict_size) {
        return Status::Corruption("columnar block: code out of range");
      }
      c.codes.push_back(static_cast<uint32_t>(code));
    }
  }
  cs.rows_ = static_cast<int>(nrows);
  return cs;
}

void ColumnStore::ExhaustDictionariesForTest() {
  for (Column& c : columns_) {
    c.dict.set_next_code_for_test(Dictionary::kMaxCodes);
  }
}

}  // namespace relview
