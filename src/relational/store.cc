#include "relational/store.h"

#include <algorithm>
#include <utility>

namespace relview {

const char* StoreKindName(StoreKind kind) {
  switch (kind) {
    case StoreKind::kRowHash:
      return "row";
    case StoreKind::kColumnar:
      return "columnar";
  }
  return "row";  // unreachable
}

Result<StoreKind> ParseStoreKind(const std::string& name) {
  if (name == "row") return StoreKind::kRowHash;
  if (name == "columnar") return StoreKind::kColumnar;
  return Status::InvalidArgument("unknown store kind \"" + name +
                                 "\" (want row|columnar)");
}

namespace {

/// Reference implementation: a Relation with rows kept sorted.
class RowInstanceStore final : public InstanceStore {
 public:
  explicit RowInstanceStore(Relation initial) : rel_(std::move(initial)) {}

  StoreKind kind() const override { return StoreKind::kRowHash; }
  const Schema& schema() const override { return rel_.schema(); }
  int size() const override { return rel_.size(); }

  Value At(int row, int pos) const override { return rel_.row(row)[pos]; }
  Tuple RowAt(int row) const override { return rel_.row(row); }

  int PositionOf(const Tuple& t) const override {
    const auto& rows = rel_.rows();
    auto it = std::lower_bound(rows.begin(), rows.end(), t);
    if (it == rows.end() || !(*it == t)) return -1;
    return static_cast<int>(it - rows.begin());
  }

  bool Agrees(int row, const Tuple& t, const AttrSet& on) const override {
    return rel_.row(row).AgreesWith(t, rel_.schema(), on);
  }

  uint64_t HashOn(int row, const AttrSet& on) const override {
    return rel_.row(row).HashOn(rel_.schema(), on);
  }

  int InsertRow(const Tuple& t) override {
    std::vector<Tuple>& rows = rel_.mutable_rows();
    auto it = std::lower_bound(rows.begin(), rows.end(), t);
    const int pos = static_cast<int>(it - rows.begin());
    rows.insert(it, t);
    return pos;
  }

  void EraseAt(int pos) override {
    std::vector<Tuple>& rows = rel_.mutable_rows();
    rows.erase(rows.begin() + pos);
  }

  Relation Materialize() const override { return rel_; }

  size_t MemoryBytes() const override {
    size_t total = sizeof(*this) + rel_.rows().capacity() * sizeof(Tuple);
    for (const Tuple& t : rel_.rows()) {
      total += t.values().capacity() * sizeof(Value);
    }
    return total;
  }

 private:
  Relation rel_;
};

/// Dictionary-encoded columnar implementation.
class ColumnarInstanceStore final : public InstanceStore {
 public:
  explicit ColumnarInstanceStore(ColumnStore store)
      : store_(std::move(store)) {}

  StoreKind kind() const override { return StoreKind::kColumnar; }
  const Schema& schema() const override { return store_.schema(); }
  int size() const override { return store_.size(); }

  Value At(int row, int pos) const override { return store_.At(row, pos); }
  Tuple RowAt(int row) const override { return store_.RowAt(row); }
  int PositionOf(const Tuple& t) const override {
    return store_.PositionOf(t);
  }

  bool Agrees(int row, const Tuple& t, const AttrSet& on) const override {
    const Schema& s = store_.schema();
    bool agree = true;
    on.ForEach([&](AttrId a) {
      if (agree &&
          store_.RawAt(row, s.PosOf(a)) != t[s.PosOf(a)].raw()) {
        agree = false;
      }
    });
    return agree;
  }

  uint64_t HashOn(int row, const AttrSet& on) const override {
    // Must mirror Tuple::HashOn bit-for-bit (shared bucket keys).
    const Schema& s = store_.schema();
    uint64_t h = 0x5DEECE66DULL;
    on.ForEach([&](AttrId a) {
      h = HashCombine(h, store_.RawAt(row, s.PosOf(a)));
    });
    return h;
  }

  int InsertRow(const Tuple& t) override {
    Result<int> pos = store_.InsertRow(t);
    // Intern overflow is the only failure mode; it is unreachable with
    // 32-bit Values (a column cannot hold 2^32 distinct ones) and is
    // exercised directly in tests via ExhaustDictionariesForTest.
    RELVIEW_DCHECK(pos.ok(), "columnar insert failed");
    return *pos;
  }

  void EraseAt(int pos) override { store_.EraseRow(pos); }

  Relation Materialize() const override { return store_.ToRelation(); }
  size_t MemoryBytes() const override { return store_.MemoryBytes(); }

 private:
  ColumnStore store_;
};

}  // namespace

std::unique_ptr<InstanceStore> MakeInstanceStore(StoreKind kind,
                                                 Relation initial) {
  if (kind == StoreKind::kColumnar) {
    Result<ColumnStore> cs = ColumnStore::FromRelation(initial);
    RELVIEW_DCHECK(cs.ok(), "columnar store build failed");
    return std::make_unique<ColumnarInstanceStore>(std::move(*cs));
  }
  return std::make_unique<RowInstanceStore>(std::move(initial));
}

}  // namespace relview
