#include "relational/attr_set.h"

namespace relview {

std::string AttrSet::ToString() const {
  std::string out = "{";
  bool first = true;
  ForEach([&](AttrId a) {
    if (!first) out += ",";
    first = false;
    out += std::to_string(a);
  });
  out += "}";
  return out;
}

}  // namespace relview
