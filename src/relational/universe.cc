#include "relational/universe.h"

#include <sstream>

namespace relview {

Universe Universe::Anonymous(int n) {
  Universe u;
  for (int i = 0; i < n; ++i) {
    auto r = u.Add("A" + std::to_string(i));
    RELVIEW_DCHECK(r.ok(), "Anonymous universe overflow");
  }
  return u;
}

Result<Universe> Universe::Parse(const std::string& names) {
  Universe u;
  std::istringstream in(names);
  std::string tok;
  while (in >> tok) {
    RELVIEW_ASSIGN_OR_RETURN(AttrId id, u.Add(tok));
    (void)id;
  }
  return u;
}

Result<AttrId> Universe::Add(const std::string& name) {
  auto it = ids_.find(name);
  if (it != ids_.end()) return it->second;
  if (size() >= AttrSet::kMaxAttrs) {
    return Status::CapacityExceeded("universe limited to 256 attributes");
  }
  AttrId id = static_cast<AttrId>(names_.size());
  names_.push_back(name);
  ids_.emplace(name, id);
  return id;
}

Result<AttrId> Universe::Id(const std::string& name) const {
  auto it = ids_.find(name);
  if (it == ids_.end()) {
    return Status::NotFound("unknown attribute: " + name);
  }
  return it->second;
}

AttrId Universe::operator[](const std::string& name) const {
  auto r = Id(name);
  RELVIEW_DCHECK(r.ok(), ("unknown attribute: " + name).c_str());
  return *r;
}

Result<AttrSet> Universe::Set(const std::string& names) const {
  AttrSet out;
  std::istringstream in(names);
  std::string tok;
  while (in >> tok) {
    RELVIEW_ASSIGN_OR_RETURN(AttrId id, Id(tok));
    out.Add(id);
  }
  return out;
}

AttrSet Universe::SetOf(const std::string& names) const {
  auto r = Set(names);
  RELVIEW_DCHECK(r.ok(), ("bad attribute set: " + names).c_str());
  return *r;
}

std::string Universe::Format(const AttrSet& set) const {
  std::string out = "{";
  bool first = true;
  set.ForEach([&](AttrId a) {
    if (!first) out += ",";
    first = false;
    out += (a < names_.size()) ? names_[a] : ("#" + std::to_string(a));
  });
  out += "}";
  return out;
}

}  // namespace relview
