// InstanceStore: the narrow storage interface behind the view machinery.
//
// The engine's hot paths (ViewIndex bucket confirms, condition-(a) mu
// lookups, condition-(c) candidate filters) only ever need per-cell reads,
// subset agreement checks, projection hashes, and canonical-order
// insert/erase — never a materialized Tuple per row. This interface
// exposes exactly that, so the backing representation can be either
//
//  * kRowHash — the reference implementation: a Relation whose rows are
//    kept in canonical (ascending raw-value lexicographic) order, the
//    layout every witness row number in the paper tests is pinned to; or
//  * kColumnar — a dictionary-encoded ColumnStore (column_store.h) with
//    one contiguous code vector per attribute.
//
// Both maintain the identical canonical row order, so positions — and
// therefore verdicts and witnesses — agree store-for-store. The lockstep
// differential test (tests/columnar_diff_test.cc) holds this.

#ifndef RELVIEW_RELATIONAL_STORE_H_
#define RELVIEW_RELATIONAL_STORE_H_

#include <memory>
#include <string>

#include "relational/attr_set.h"
#include "relational/column_store.h"
#include "relational/relation.h"
#include "relational/schema.h"
#include "relational/tuple.h"
#include "util/status.h"

namespace relview {

enum class StoreKind {
  kRowHash,
  kColumnar,
};

/// "row" or "columnar".
const char* StoreKindName(StoreKind kind);
/// Parses "row" / "columnar" (the --store= axis everywhere).
Result<StoreKind> ParseStoreKind(const std::string& name);

/// A relation instance in canonical row order behind a representation-
/// agnostic surface. Positions are indexes into the canonical order and
/// are shared vocabulary with ViewIndex slots and witness rows.
class InstanceStore {
 public:
  virtual ~InstanceStore() = default;

  virtual StoreKind kind() const = 0;
  virtual const Schema& schema() const = 0;
  virtual int size() const = 0;

  /// Cell (row, storage position).
  virtual Value At(int row, int pos) const = 0;
  /// Materializes one row (cold paths: witnesses, seeds, serialization).
  virtual Tuple RowAt(int row) const = 0;
  /// Position of t in canonical order; -1 when absent. O(arity log n).
  virtual int PositionOf(const Tuple& t) const = 0;
  /// Row agrees with t on every attribute in `on`.
  virtual bool Agrees(int row, const Tuple& t, const AttrSet& on) const = 0;
  /// Hash of the row's projection onto `on`; MUST match Tuple::HashOn for
  /// the same cells — index buckets are keyed by query-tuple hashes.
  virtual uint64_t HashOn(int row, const AttrSet& on) const = 0;

  /// Inserts t at its canonical position (which is returned). Duplicate
  /// insertion is a caller error (checked by callers, as ViewIndex does).
  virtual int InsertRow(const Tuple& t) = 0;
  /// Erases the row at `pos`.
  virtual void EraseAt(int pos) = 0;

  /// The full instance as a Relation (cold paths only).
  virtual Relation Materialize() const = 0;
  /// Resident bytes of the representation.
  virtual size_t MemoryBytes() const = 0;
};

/// Builds a store of `kind` holding `initial` (whose rows must already be
/// in canonical order, e.g. a Relation::Project / Normalize output).
std::unique_ptr<InstanceStore> MakeInstanceStore(StoreKind kind,
                                                 Relation initial);

}  // namespace relview

#endif  // RELVIEW_RELATIONAL_STORE_H_
