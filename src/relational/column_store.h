// ColumnStore: a dictionary-encoded, column-major relation instance.
//
// Each attribute is stored as a contiguous vector of uint32_t *codes* over
// a per-attribute Dictionary that interns the attribute's distinct Values
// in first-seen order. Scans touch one cache-resident code vector instead
// of one heap-allocated Tuple per row; equality probes compare codes
// (interning makes code equality ⇔ value equality within a column); and
// dictionary pages serialize compactly (each distinct value written once,
// rows as code vectors).
//
// Row order is the canonical set-semantics order Relation::Normalize
// produces (ascending raw-value lexicographic), maintained on every
// insert/erase, so position-based witnesses agree exactly with the
// row-store reference implementation (see store.h).

#ifndef RELVIEW_RELATIONAL_COLUMN_STORE_H_
#define RELVIEW_RELATIONAL_COLUMN_STORE_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "relational/relation.h"
#include "relational/schema.h"
#include "relational/tuple.h"
#include "relational/value.h"
#include "util/status.h"

namespace relview {

/// Interns one column's distinct Values as dense uint32_t codes in
/// first-seen order. Decode is an array lookup; Intern is one hash probe.
class Dictionary {
 public:
  /// Codes are dense from 0; the full uint32_t range is addressable. The
  /// guard exists for the (unreachable with 32-bit Values, but contractual)
  /// case of interning past 2^32 distinct values — see
  /// set_next_code_for_test.
  static constexpr uint64_t kMaxCodes = uint64_t{1} << 32;

  /// Returns the code for `v`, interning it on first use, or
  /// kResourceExhausted once the code space is full.
  Result<uint32_t> Intern(Value v) {
    auto it = code_of_.find(v.raw());
    if (it != code_of_.end()) return it->second;
    if (next_code_ >= kMaxCodes) {
      return Status::Internal(
          "dictionary code space exhausted (2^32 distinct values)");
    }
    const uint32_t code = static_cast<uint32_t>(next_code_);
    ++next_code_;
    values_.push_back(v.raw());
    code_of_.emplace(v.raw(), code);
    return code;
  }

  /// Code of `v` without interning; -1 (as int64_t) when absent.
  int64_t CodeOf(Value v) const {
    auto it = code_of_.find(v.raw());
    return it == code_of_.end() ? -1 : static_cast<int64_t>(it->second);
  }

  /// The Value a code decodes to. Precondition: code < size().
  Value Decode(uint32_t code) const {
    const uint32_t raw = values_[code];
    return (raw & Value::kNullTag) != 0 ? Value::Null(raw & ~Value::kNullTag)
                                        : Value::Const(raw);
  }

  /// Raw id a code decodes to (the hot-loop form of Decode).
  uint32_t RawOf(uint32_t code) const { return values_[code]; }

  size_t size() const { return values_.size(); }

  /// The dictionary page: distinct raw values in code order. Serialized
  /// verbatim by the columnar checkpoint encoding.
  const std::vector<uint32_t>& page() const { return values_; }

  /// Rebuilds a dictionary from a serialized page. Fails on duplicate
  /// entries (a corrupt page would alias two codes).
  static Result<Dictionary> FromPage(const std::vector<uint32_t>& page);

  size_t MemoryBytes() const {
    // Vector payload plus an estimate of the hash map (bucket array +
    // nodes), the honest cost of O(1) interning.
    return values_.size() * sizeof(uint32_t) +
           code_of_.bucket_count() * sizeof(void*) +
           code_of_.size() * (sizeof(uint32_t) * 2 + 2 * sizeof(void*));
  }

  /// Testing hook: fast-forwards the next code so the 2^32 overflow guard
  /// is reachable without interning four billion values.
  void set_next_code_for_test(uint64_t next) { next_code_ = next; }

 private:
  std::vector<uint32_t> values_;  // code -> raw value (the page)
  std::unordered_map<uint32_t, uint32_t> code_of_;
  uint64_t next_code_ = 0;
};

/// A dictionary-encoded columnar relation instance in canonical row order.
class ColumnStore {
 public:
  ColumnStore() = default;
  explicit ColumnStore(const Schema& schema)
      : schema_(schema), columns_(static_cast<size_t>(schema.arity())) {}

  /// Builds from a relation, preserving its row order (callers pass
  /// canonical/normalized relations; the store does not re-sort).
  static Result<ColumnStore> FromRelation(const Relation& r);

  const Schema& schema() const { return schema_; }
  int arity() const { return schema_.arity(); }
  int size() const { return rows_; }
  bool empty() const { return rows_ == 0; }

  /// The contiguous code vector of storage column `pos`.
  const std::vector<uint32_t>& codes(int pos) const {
    return columns_[static_cast<size_t>(pos)].codes;
  }
  const Dictionary& dictionary(int pos) const {
    return columns_[static_cast<size_t>(pos)].dict;
  }

  /// Value at (row, storage column): one code load + one page lookup.
  Value At(int row, int pos) const {
    const Column& c = columns_[static_cast<size_t>(pos)];
    return c.dict.Decode(c.codes[static_cast<size_t>(row)]);
  }
  /// Raw value id at (row, storage column).
  uint32_t RawAt(int row, int pos) const {
    const Column& c = columns_[static_cast<size_t>(pos)];
    return c.dict.RawOf(c.codes[static_cast<size_t>(row)]);
  }

  /// Materializes row `row` as a Tuple.
  Tuple RowAt(int row) const;

  /// Appends a row (no order maintenance; used by deserialization and
  /// bulk builds that preserve an already-canonical order).
  Status AppendRow(const Tuple& t);

  /// Inserts `t` at its canonical sorted position; returns the position.
  Result<int> InsertRow(const Tuple& t);

  /// Removes the row at `row` (memmove within each code vector).
  void EraseRow(int row);

  /// Position of `t` in the canonical order, -1 if absent. O(arity log n)
  /// via binary search over the decoded order.
  int PositionOf(const Tuple& t) const;

  /// Three-way comparison of stored row `row` against `t` in raw-value
  /// lexicographic (canonical) order.
  int CompareRow(int row, const Tuple& t) const;

  /// True iff stored row `row` agrees with `t` on every storage position
  /// in `pos` (positions, not AttrIds; see Schema::PosOf).
  bool RowAgrees(int row, const Tuple& t,
                 const std::vector<int>& pos) const;

  /// True iff stored rows `row_a` and `row_b` agree (code-equal) on every
  /// storage position in `pos`.
  bool RowsAgreeOn(int row_a, int row_b, const std::vector<int>& pos) const;

  /// Finds a violating pair for the FD (lhs storage positions -> rhs
  /// storage position): two rows agreeing on every lhs column with
  /// different rhs codes. Returns false when none. This is the vectorized
  /// violation scan: one pass over the lhs code vectors with a hash group
  /// table, O(n) expected.
  bool FindFDViolation(const std::vector<int>& lhs_pos, int rhs_pos,
                       int* row_a, int* row_b) const;

  /// Materializes the whole store as a Relation (row order preserved).
  Relation ToRelation() const;

  /// Resident bytes: code vectors + dictionary pages + intern maps.
  size_t MemoryBytes() const;

  /// Serializes as dictionary pages + code vectors (the "rvcols1" block
  /// format embedded in columnar checkpoints):
  ///   rvcols1 <arity> <nrows>\n
  ///   <dict-size> <raw> <raw> ...\n      (one line per column)
  ///   <code> <code> ...\n                (one line per column, nrows codes)
  void EncodeTo(std::string* out) const;

  /// Parses an EncodeTo block produced over `schema`. Returns kCorruption
  /// on any structural mismatch.
  static Result<ColumnStore> Decode(const Schema& schema,
                                    const std::string& body);

  /// Testing hook: fast-forwards every column's dictionary so the next
  /// intern trips the 2^32 code-space guard.
  void ExhaustDictionariesForTest();

 private:
  struct Column {
    Dictionary dict;
    std::vector<uint32_t> codes;
  };

  Schema schema_;
  std::vector<Column> columns_;
  int rows_ = 0;
};

}  // namespace relview

#endif  // RELVIEW_RELATIONAL_COLUMN_STORE_H_
