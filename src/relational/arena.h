// Arena: a bump allocator for chase scratch state. The columnar chase and
// the condition-(c) probe kernels allocate the same shapes over and over
// (code matrices, group tables, worklists); an arena turns those into
// pointer bumps over a few retained blocks, and Reset() recycles all of it
// without returning memory to the OS between probes.
//
// The arena owns raw bytes only: allocate trivially-destructible types
// (the kernels use uint32_t/int32_t exclusively). Alignment is the
// allocation type's own alignof.

#ifndef RELVIEW_RELATIONAL_ARENA_H_
#define RELVIEW_RELATIONAL_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <vector>

namespace relview {

class Arena {
 public:
  static constexpr size_t kDefaultBlockBytes = size_t{256} * 1024;

  explicit Arena(size_t block_bytes = kDefaultBlockBytes)
      : block_bytes_(block_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Allocates `n` default-initialized objects of trivially-destructible
  /// type T. The storage lives until Reset() or destruction.
  template <typename T>
  T* Alloc(size_t n) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena storage is never destructed");
    const size_t bytes = n * sizeof(T);
    uint8_t* p = AllocBytes(bytes, alignof(T));
    return new (p) T[n]();
  }

  /// Recycles every block for reuse; previously returned pointers are
  /// invalidated but the memory stays owned (no free/realloc churn).
  void Reset() {
    current_ = 0;
    used_ = 0;
  }

  /// Total bytes reserved across all blocks (telemetry / memory reports).
  size_t reserved_bytes() const {
    size_t total = 0;
    for (const Block& b : blocks_) total += b.size;
    return total;
  }

 private:
  struct Block {
    std::unique_ptr<uint8_t[]> data;
    size_t size = 0;
  };

  uint8_t* AllocBytes(size_t bytes, size_t align) {
    for (;;) {
      if (current_ < blocks_.size()) {
        Block& b = blocks_[current_];
        const size_t aligned = (used_ + align - 1) & ~(align - 1);
        if (aligned + bytes <= b.size) {
          used_ = aligned + bytes;
          return b.data.get() + aligned;
        }
        ++current_;
        used_ = 0;
        continue;
      }
      const size_t size = bytes > block_bytes_ ? bytes : block_bytes_;
      blocks_.push_back(Block{std::make_unique<uint8_t[]>(size), size});
      // Loop re-enters with the fresh block as current.
    }
  }

  size_t block_bytes_;
  std::vector<Block> blocks_;
  size_t current_ = 0;  // index of the block being bumped
  size_t used_ = 0;     // bytes consumed in blocks_[current_]
};

}  // namespace relview

#endif  // RELVIEW_RELATIONAL_ARENA_H_
