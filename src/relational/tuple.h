// Tuple: a dense row of Values laid out in its Schema's column order.

#ifndef RELVIEW_RELATIONAL_TUPLE_H_
#define RELVIEW_RELATIONAL_TUPLE_H_

#include <string>
#include <vector>

#include "relational/schema.h"
#include "relational/value.h"
#include "util/small_util.h"

namespace relview {

class Tuple {
 public:
  Tuple() = default;
  explicit Tuple(int arity) : values_(arity) {}
  explicit Tuple(std::vector<Value> values) : values_(std::move(values)) {}

  int arity() const { return static_cast<int>(values_.size()); }
  Value& operator[](int pos) { return values_[pos]; }
  const Value& operator[](int pos) const { return values_[pos]; }
  const std::vector<Value>& values() const { return values_; }

  /// Value at attribute `a` under schema `s`. Precondition: s contains a.
  Value At(const Schema& s, AttrId a) const { return values_[s.PosOf(a)]; }
  void Set(const Schema& s, AttrId a, Value v) { values_[s.PosOf(a)] = v; }

  /// True iff this and `o` (both under schema `s`) agree on every attribute
  /// in `on`.
  bool AgreesWith(const Tuple& o, const Schema& s, const AttrSet& on) const {
    bool agree = true;
    on.ForEach([&](AttrId a) {
      if (values_[s.PosOf(a)] != o.values_[s.PosOf(a)]) agree = false;
    });
    return agree;
  }

  /// Projects onto `to` (a subset of `from`'s attributes).
  Tuple Project(const Schema& from, const Schema& to) const {
    Tuple out(to.arity());
    for (int i = 0; i < to.arity(); ++i) {
      out.values_[i] = values_[from.PosOf(to.cols()[i])];
    }
    return out;
  }

  bool operator==(const Tuple& o) const { return values_ == o.values_; }
  bool operator!=(const Tuple& o) const { return values_ != o.values_; }
  bool operator<(const Tuple& o) const { return values_ < o.values_; }

  uint64_t Hash() const {
    uint64_t h = 0xABCDEF12ULL;
    for (const Value& v : values_) h = HashCombine(h, v.raw());
    return h;
  }

  /// Hash of the projection onto `on` under schema `s`.
  uint64_t HashOn(const Schema& s, const AttrSet& on) const {
    uint64_t h = 0x5DEECE66DULL;
    on.ForEach([&](AttrId a) { h = HashCombine(h, values_[s.PosOf(a)].raw()); });
    return h;
  }

  std::string ToString() const {
    std::string out = "(";
    for (int i = 0; i < arity(); ++i) {
      if (i) out += ",";
      out += values_[i].ToString();
    }
    return out + ")";
  }

 private:
  std::vector<Value> values_;
};

struct TupleHash {
  size_t operator()(const Tuple& t) const {
    return static_cast<size_t>(t.Hash());
  }
};

}  // namespace relview

#endif  // RELVIEW_RELATIONAL_TUPLE_H_
