#include "relational/csv.h"

#include <istream>
#include <ostream>
#include <sstream>
#include <vector>

namespace relview {

namespace {

std::vector<std::string> Split(const std::string& line,
                               const std::string& delims) {
  std::vector<std::string> out;
  std::string current;
  for (char c : line) {
    if (delims.find(c) != std::string::npos) {
      if (!current.empty()) out.push_back(std::move(current));
      current.clear();
    } else if (c != '\r') {
      current += c;
    }
  }
  if (!current.empty()) out.push_back(std::move(current));
  return out;
}

}  // namespace

Result<CsvResult> ReadTable(std::istream& in, ValuePool* pool,
                            const Universe* universe,
                            const std::string& delims) {
  CsvResult result;
  std::string line;
  // Header.
  std::vector<std::string> header;
  while (std::getline(in, line)) {
    header = Split(line, delims);
    if (!header.empty() && header[0][0] != '#') break;
    header.clear();
  }
  if (header.empty()) {
    return Status::InvalidArgument("missing header line");
  }

  std::vector<AttrId> cols;  // header order -> attribute id
  if (universe != nullptr) {
    result.universe = *universe;
    for (const std::string& name : header) {
      RELVIEW_ASSIGN_OR_RETURN(AttrId id, result.universe.Id(name));
      cols.push_back(id);
    }
  } else {
    for (const std::string& name : header) {
      RELVIEW_ASSIGN_OR_RETURN(AttrId id, result.universe.Add(name));
      cols.push_back(id);
    }
  }
  AttrSet attrs;
  for (AttrId a : cols) {
    if (attrs.Contains(a)) {
      return Status::InvalidArgument("duplicate header column");
    }
    attrs.Add(a);
  }
  result.relation = Relation(attrs);
  const Schema& s = result.relation.schema();

  int lineno = 1;
  while (std::getline(in, line)) {
    ++lineno;
    std::vector<std::string> cells = Split(line, delims);
    if (cells.empty() || cells[0][0] == '#') continue;
    if (cells.size() != header.size()) {
      return Status::InvalidArgument(
          "line " + std::to_string(lineno) + ": expected " +
          std::to_string(header.size()) + " cells, got " +
          std::to_string(cells.size()));
    }
    Tuple t(s.arity());
    for (size_t i = 0; i < cells.size(); ++i) {
      t.Set(s, cols[i], pool->Intern(cells[i]));
    }
    result.relation.AddRow(std::move(t));
  }
  result.relation.Normalize();
  return result;
}

Result<CsvResult> ReadTableFromString(const std::string& text,
                                      ValuePool* pool,
                                      const Universe* universe,
                                      const std::string& delims) {
  std::istringstream in(text);
  return ReadTable(in, pool, universe, delims);
}

void WriteTable(std::ostream& out, const Relation& r, const Universe& u,
                const ValuePool& pool) {
  const Schema& s = r.schema();
  for (int i = 0; i < s.arity(); ++i) {
    if (i) out << '\t';
    out << u.Name(s.cols()[i]);
  }
  out << '\n';
  for (const Tuple& row : r.rows()) {
    for (int i = 0; i < row.arity(); ++i) {
      if (i) out << '\t';
      out << pool.NameOf(row[i]);
    }
    out << '\n';
  }
}

}  // namespace relview
