// Universe: the named attribute space U of a single-relation schema (the
// paper's universal-relation setting). Maps attribute names <-> AttrIds and
// parses attribute-set expressions like "Emp Dept Mgr".

#ifndef RELVIEW_RELATIONAL_UNIVERSE_H_
#define RELVIEW_RELATIONAL_UNIVERSE_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "relational/attr_set.h"
#include "util/status.h"

namespace relview {

class Universe {
 public:
  Universe() = default;

  /// Creates a universe with attributes named A0..A{n-1}.
  static Universe Anonymous(int n);

  /// Creates a universe from whitespace-separated names, e.g.
  /// "Emp Dept Mgr".
  static Result<Universe> Parse(const std::string& names);

  /// Adds an attribute; returns its id. Re-adding an existing name returns
  /// the existing id.
  Result<AttrId> Add(const std::string& name);

  /// Id of an existing attribute.
  Result<AttrId> Id(const std::string& name) const;

  /// Convenience for tests/examples: aborts when the name is unknown.
  AttrId operator[](const std::string& name) const;

  const std::string& Name(AttrId id) const { return names_[id]; }
  int size() const { return static_cast<int>(names_.size()); }

  /// The full attribute set U.
  AttrSet All() const { return AttrSet::FirstN(size()); }

  /// Parses a whitespace-separated list of known attribute names into a set.
  Result<AttrSet> Set(const std::string& names) const;

  /// Convenience for tests/examples: aborts on unknown names.
  AttrSet SetOf(const std::string& names) const;

  /// Pretty form of a set using attribute names, e.g. "{Emp,Dept}".
  std::string Format(const AttrSet& set) const;

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, AttrId> ids_;
};

}  // namespace relview

#endif  // RELVIEW_RELATIONAL_UNIVERSE_H_
