// AttrSet: a fixed-capacity (256) set of attribute ids, the workhorse of
// every dependency-theoretic algorithm in relview (closures, complements,
// MVD inference). Implemented as four 64-bit words so that union /
// intersection / difference / subset tests are a handful of instructions.

#ifndef RELVIEW_RELATIONAL_ATTR_SET_H_
#define RELVIEW_RELATIONAL_ATTR_SET_H_

#include <array>
#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

#include "util/small_util.h"

namespace relview {

/// Index of an attribute within a Universe. At most kMaxAttrs attributes.
using AttrId = uint16_t;

/// A set of attributes over a universe of at most 256 attributes.
class AttrSet {
 public:
  static constexpr int kMaxAttrs = 256;
  static constexpr int kWords = kMaxAttrs / 64;

  constexpr AttrSet() : words_{0, 0, 0, 0} {}

  AttrSet(std::initializer_list<AttrId> attrs) : words_{0, 0, 0, 0} {
    for (AttrId a : attrs) Add(a);
  }

  /// The set {0, 1, ..., n-1}; the usual "universe" set U.
  static AttrSet FirstN(int n) {
    AttrSet s;
    for (int i = 0; i < n; ++i) s.Add(static_cast<AttrId>(i));
    return s;
  }

  static AttrSet Of(const std::vector<AttrId>& attrs) {
    AttrSet s;
    for (AttrId a : attrs) s.Add(a);
    return s;
  }

  static AttrSet Single(AttrId a) {
    AttrSet s;
    s.Add(a);
    return s;
  }

  void Add(AttrId a) { words_[a >> 6] |= (1ULL << (a & 63)); }
  void Remove(AttrId a) { words_[a >> 6] &= ~(1ULL << (a & 63)); }
  bool Contains(AttrId a) const {
    return (words_[a >> 6] >> (a & 63)) & 1ULL;
  }

  bool Empty() const {
    return (words_[0] | words_[1] | words_[2] | words_[3]) == 0;
  }

  /// Number of attributes in the set.
  int Count() const {
    int c = 0;
    for (uint64_t w : words_) c += __builtin_popcountll(w);
    return c;
  }

  /// Smallest attribute id in the set; -1 when empty.
  int First() const {
    for (int i = 0; i < kWords; ++i) {
      if (words_[i]) return i * 64 + __builtin_ctzll(words_[i]);
    }
    return -1;
  }

  /// Smallest attribute id strictly greater than `a`; -1 when none.
  int Next(int a) const {
    for (int i = a + 1; i < kMaxAttrs; ++i) {
      if (Contains(static_cast<AttrId>(i))) return i;
    }
    return -1;
  }

  AttrSet operator|(const AttrSet& o) const {
    AttrSet r;
    for (int i = 0; i < kWords; ++i) r.words_[i] = words_[i] | o.words_[i];
    return r;
  }
  AttrSet operator&(const AttrSet& o) const {
    AttrSet r;
    for (int i = 0; i < kWords; ++i) r.words_[i] = words_[i] & o.words_[i];
    return r;
  }
  /// Set difference (this minus o).
  AttrSet operator-(const AttrSet& o) const {
    AttrSet r;
    for (int i = 0; i < kWords; ++i) r.words_[i] = words_[i] & ~o.words_[i];
    return r;
  }
  AttrSet& operator|=(const AttrSet& o) {
    for (int i = 0; i < kWords; ++i) words_[i] |= o.words_[i];
    return *this;
  }
  AttrSet& operator&=(const AttrSet& o) {
    for (int i = 0; i < kWords; ++i) words_[i] &= o.words_[i];
    return *this;
  }

  bool operator==(const AttrSet& o) const { return words_ == o.words_; }
  bool operator!=(const AttrSet& o) const { return words_ != o.words_; }
  /// Lexicographic order on the words; a total order usable in std::map.
  bool operator<(const AttrSet& o) const { return words_ < o.words_; }

  /// True iff this ⊆ o.
  bool SubsetOf(const AttrSet& o) const {
    for (int i = 0; i < kWords; ++i) {
      if (words_[i] & ~o.words_[i]) return false;
    }
    return true;
  }

  bool Intersects(const AttrSet& o) const {
    for (int i = 0; i < kWords; ++i) {
      if (words_[i] & o.words_[i]) return true;
    }
    return false;
  }

  /// The members in ascending order.
  std::vector<AttrId> ToVector() const {
    std::vector<AttrId> out;
    out.reserve(Count());
    for (int i = First(); i >= 0; i = Next(i)) {
      out.push_back(static_cast<AttrId>(i));
    }
    return out;
  }

  /// Calls fn(AttrId) for each member in ascending order.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (int w = 0; w < kWords; ++w) {
      uint64_t bits = words_[w];
      while (bits) {
        int b = __builtin_ctzll(bits);
        fn(static_cast<AttrId>(w * 64 + b));
        bits &= bits - 1;
      }
    }
  }

  uint64_t Hash() const {
    uint64_t h = 0x12345678ULL;
    for (uint64_t w : words_) h = HashCombine(h, w);
    return h;
  }

  /// Debug form using raw ids, e.g. "{0,3,7}".
  std::string ToString() const;

 private:
  std::array<uint64_t, kWords> words_;
};

struct AttrSetHash {
  size_t operator()(const AttrSet& s) const {
    return static_cast<size_t>(s.Hash());
  }
};

}  // namespace relview

#endif  // RELVIEW_RELATIONAL_ATTR_SET_H_
