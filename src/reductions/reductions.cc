#include "reductions/reductions.h"

namespace relview {

namespace {

/// Bit constants for variable columns.
const Value kZero = Value::Const(0);
const Value kOne = Value::Const(1);
/// B-column constants of Theorems 4/5 (a != b).
const Value kA = Value::Const(2);
const Value kB = Value::Const(3);

/// Attribute of the literal l: Xi for a positive literal, Xi' for a
/// negative one (the paper's L_{ji}).
AttrId LitAttr(const Lit& l, const std::vector<AttrId>& xi,
               const std::vector<AttrId>& xi_neg) {
  return l.positive ? xi[l.var] : xi_neg[l.var];
}

/// The two-row factor S_{Xi Xi'} = {(0,1), (1,0)} encoding a truth value.
Relation VariableFactor(AttrId xi, AttrId xi_neg) {
  Relation f(AttrSet({xi, xi_neg}));
  const Schema& s = f.schema();
  Tuple t1(2), t2(2);
  t1.Set(s, xi, kZero);
  t1.Set(s, xi_neg, kOne);
  t2.Set(s, xi, kOne);
  t2.Set(s, xi_neg, kZero);
  f.AddRow(t1);
  f.AddRow(t2);
  return f;
}

}  // namespace

MinComplementReduction ReduceSatToMinComplement(const CNF3& phi) {
  MinComplementReduction r;
  r.n = phi.num_vars;
  r.m = static_cast<int>(phi.clauses.size());
  for (int j = 0; j < r.m; ++j) {
    r.fj.push_back(*r.universe.Add("F" + std::to_string(j)));
  }
  for (int i = 0; i < r.n; ++i) {
    r.xi.push_back(*r.universe.Add("X" + std::to_string(i)));
    r.xi_neg.push_back(*r.universe.Add("X" + std::to_string(i) + "n"));
  }
  r.a = *r.universe.Add("A");

  AttrSet all_f;
  for (AttrId f : r.fj) all_f.Add(f);
  for (int i = 0; i < r.n; ++i) {
    // F1..Fm Xi -> Xi' and F1..Fm Xi' -> Xi.
    r.fds.Add(all_f | AttrSet::Single(r.xi[i]), r.xi_neg[i]);
    r.fds.Add(all_f | AttrSet::Single(r.xi_neg[i]), r.xi[i]);
  }
  for (int j = 0; j < r.m; ++j) {
    for (const Lit& l : phi.clauses[j]) {
      r.fds.Add(AttrSet::Single(LitAttr(l, r.xi, r.xi_neg)), r.fj[j]);
    }
  }
  r.x = r.universe.All();
  r.x.Remove(r.a);
  r.target_size = 1 + r.n;
  return r;
}

std::vector<bool> MinComplementReduction::DecodeAssignment(
    const AttrSet& y) const {
  std::vector<bool> h(n, false);
  for (int i = 0; i < n; ++i) h[i] = y.Contains(xi[i]);
  return h;
}

SuccinctInsertionReduction ReduceForallExistsToInsertion(const CNF3& phi,
                                                         int num_universal) {
  SuccinctInsertionReduction r;
  r.n = phi.num_vars;
  r.m = static_cast<int>(phi.clauses.size());
  r.num_universal = num_universal;

  const AttrId b = *r.universe.Add("B");
  std::vector<AttrId> xi, xi_neg, fj;
  for (int i = 0; i < r.n; ++i) {
    xi.push_back(*r.universe.Add("X" + std::to_string(i)));
    xi_neg.push_back(*r.universe.Add("X" + std::to_string(i) + "n"));
  }
  const AttrId a = *r.universe.Add("A");
  for (int j = 0; j < r.m; ++j) {
    fj.push_back(*r.universe.Add("F" + std::to_string(j)));
  }
  const AttrId c = *r.universe.Add("C");

  // Sigma: X1 X1' .. Xk Xk' -> A;  F1..Fm -> C;  B A -> C;  Lji A -> Fj.
  AttrSet universal_block;
  for (int i = 0; i < num_universal; ++i) {
    universal_block.Add(xi[i]);
    universal_block.Add(xi_neg[i]);
  }
  r.fds.Add(universal_block, a);
  AttrSet all_f;
  for (AttrId f : fj) all_f.Add(f);
  r.fds.Add(all_f, c);
  r.fds.Add(AttrSet({b, a}), c);
  for (int j = 0; j < r.m; ++j) {
    for (const Lit& l : phi.clauses[j]) {
      r.fds.Add(AttrSet({LitAttr(l, xi, xi_neg), a}), fj[j]);
    }
  }

  // View = B X1 X1' .. Xn Xn'; complement = everything but B.
  r.view_x = AttrSet::Single(b);
  AttrSet var_block;
  for (int i = 0; i < r.n; ++i) {
    var_block.Add(xi[i]);
    var_block.Add(xi_neg[i]);
  }
  r.view_x |= var_block;
  r.comp_y = r.universe.All() - AttrSet::Single(b);

  // V = s_B × S_{X1 X1'} × ... × S_{Xn Xn'}  ∪  {s}.
  r.view = SuccinctView(r.view_x);
  CartesianProduct grid;
  Relation sb(AttrSet::Single(b));
  {
    Tuple t1(1);
    t1[0] = kB;
    sb.AddRow(t1);
  }
  grid.factors.push_back(sb);
  for (int i = 0; i < r.n; ++i) {
    grid.factors.push_back(VariableFactor(xi[i], xi_neg[i]));
  }
  RELVIEW_DCHECK(r.view.AddProduct(std::move(grid)).ok(), "bad grid product");

  CartesianProduct single;
  Relation s(r.view_x);
  {
    const Schema& ss = s.schema();
    Tuple st(ss.arity());
    st.Set(ss, b, kA);
    for (int i = 0; i < r.n; ++i) {
      st.Set(ss, xi[i], kOne);
      st.Set(ss, xi_neg[i], kOne);
    }
    s.AddRow(st);
  }
  single.factors.push_back(s);
  RELVIEW_DCHECK(r.view.AddProduct(std::move(single)).ok(), "bad s product");

  // t: B = b, variable columns all 1 (agrees with s off B).
  const Schema vs((r.view_x));
  Tuple t(vs.arity());
  t.Set(vs, b, kB);
  for (int i = 0; i < r.n; ++i) {
    t.Set(vs, xi[i], kOne);
    t.Set(vs, xi_neg[i], kOne);
  }
  r.t = t;
  return r;
}

SuccinctInsertionReduction ReduceUnsatToTest1(const CNF3& phi) {
  SuccinctInsertionReduction r;
  r.n = phi.num_vars;
  r.m = static_cast<int>(phi.clauses.size());

  const AttrId b = *r.universe.Add("B");
  std::vector<AttrId> xi, xi_neg;
  for (int i = 0; i < r.n; ++i) {
    xi.push_back(*r.universe.Add("X" + std::to_string(i)));
    xi_neg.push_back(*r.universe.Add("X" + std::to_string(i) + "n"));
  }
  const AttrId c = *r.universe.Add("C");

  // Sigma: B -> C and Lj1 Lj2 Lj3 -> C per clause.
  r.fds.Add(AttrSet::Single(b), c);
  for (int j = 0; j < r.m; ++j) {
    AttrSet lits;
    for (const Lit& l : phi.clauses[j]) lits.Add(LitAttr(l, xi, xi_neg));
    r.fds.Add(lits, c);
  }

  r.view_x = AttrSet::Single(b);
  for (int i = 0; i < r.n; ++i) {
    r.view_x.Add(xi[i]);
    r.view_x.Add(xi_neg[i]);
  }
  r.comp_y = r.universe.All() - AttrSet::Single(b);

  r.view = SuccinctView(r.view_x);
  CartesianProduct grid;
  Relation sb(AttrSet::Single(b));
  {
    Tuple t1(1);
    t1[0] = kB;
    sb.AddRow(t1);
  }
  grid.factors.push_back(sb);
  for (int i = 0; i < r.n; ++i) {
    grid.factors.push_back(VariableFactor(xi[i], xi_neg[i]));
  }
  RELVIEW_DCHECK(r.view.AddProduct(std::move(grid)).ok(), "bad grid product");

  CartesianProduct single;
  Relation s(r.view_x);
  {
    const Schema& ss = s.schema();
    Tuple st(ss.arity());
    st.Set(ss, b, kA);
    for (int i = 0; i < r.n; ++i) {
      st.Set(ss, xi[i], kZero);
      st.Set(ss, xi_neg[i], kZero);
    }
    s.AddRow(st);
  }
  single.factors.push_back(s);
  RELVIEW_DCHECK(r.view.AddProduct(std::move(single)).ok(), "bad s product");

  const Schema vs((r.view_x));
  Tuple t(vs.arity());
  t.Set(vs, b, kB);
  for (int i = 0; i < r.n; ++i) {
    t.Set(vs, xi[i], kZero);
    t.Set(vs, xi_neg[i], kZero);
  }
  r.t = t;
  return r;
}

ComplementExistenceReduction ReduceSatToComplementExistence(const CNF3& phi) {
  ComplementExistenceReduction r;
  r.n = phi.num_vars;
  r.m = static_cast<int>(phi.clauses.size());

  for (int i = 0; i < r.n; ++i) {
    r.xi.push_back(*r.universe.Add("X" + std::to_string(i)));
    r.xi_neg.push_back(*r.universe.Add("X" + std::to_string(i) + "n"));
  }
  std::vector<AttrId> fj;
  for (int j = 0; j < r.m; ++j) {
    fj.push_back(*r.universe.Add("F" + std::to_string(j)));
  }

  for (int j = 0; j < r.m; ++j) {
    for (const Lit& l : phi.clauses[j]) {
      r.fds.Add(AttrSet::Single(LitAttr(l, r.xi, r.xi_neg)), fj[j]);
    }
  }

  r.view_x = AttrSet();
  for (int i = 0; i < r.n; ++i) {
    r.view_x.Add(r.xi[i]);
    r.view_x.Add(r.xi_neg[i]);
  }

  r.view = SuccinctView(r.view_x);
  CartesianProduct grid;
  for (int i = 0; i < r.n; ++i) {
    grid.factors.push_back(VariableFactor(r.xi[i], r.xi_neg[i]));
  }
  RELVIEW_DCHECK(r.view.AddProduct(std::move(grid)).ok(), "bad grid product");

  const Schema vs((r.view_x));
  Tuple t(vs.arity());
  for (int i = 0; i < r.n; ++i) {
    t.Set(vs, r.xi[i], kOne);
    t.Set(vs, r.xi_neg[i], kOne);
  }
  r.t = t;
  return r;
}

std::vector<bool> ComplementExistenceReduction::DecodeAssignment(
    const AttrSet& y) const {
  std::vector<bool> h(n, false);
  for (int i = 0; i < n; ++i) h[i] = y.Contains(xi[i]);
  return h;
}

}  // namespace relview
