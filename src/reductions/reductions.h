// The paper's hardness constructions, implemented as executable reductions.
// Each builder maps a 3-CNF formula (or a ∀∃ 3-CNF instance) to the
// schema/view/tuple of the corresponding theorem's proof, so the library's
// algorithms can be cross-validated against SAT/QBF oracles and the
// exponential blowups can be measured.
//
//  * Theorem 2: phi satisfiable  <=>  the view X of schema S_phi has a
//    complement with 1 + n attributes (minimum-complement NP-hardness).
//  * Theorem 4: (∀X ∃Y phi) <=> the insertion of t into the succinct view
//    V is translatable (Pi2^p-hardness of translatability).
//  * Theorem 5: phi unsatisfiable <=> Test 1 accepts the insertion
//    (co-NP-hardness of Test 1 under succinct views).
//  * Theorem 7: phi satisfiable <=> some complement renders the insertion
//    translatable (NP-hardness of complement finding under succinct
//    views).

#ifndef RELVIEW_REDUCTIONS_REDUCTIONS_H_
#define RELVIEW_REDUCTIONS_REDUCTIONS_H_

#include <vector>

#include "deps/fd_set.h"
#include "relational/universe.h"
#include "solvers/cnf.h"
#include "succinct/succinct_view.h"

namespace relview {

/// Theorem 2: U = F1..Fm X1 X1' .. Xn Xn' A with FDs
/// F1..Fm Xi -> Xi', F1..Fm Xi' -> Xi, and Lj1 -> Fj, Lj2 -> Fj,
/// Lj3 -> Fj per clause; the view X is U − {A}.
struct MinComplementReduction {
  Universe universe;
  FDSet fds;
  AttrSet x;
  /// phi is satisfiable iff X has a complement of this size (= 1 + n).
  int target_size = 0;

  int n = 0, m = 0;
  std::vector<AttrId> xi, xi_neg, fj;
  AttrId a = 0;

  /// Reads a satisfying assignment off a complement of target size.
  std::vector<bool> DecodeAssignment(const AttrSet& y) const;
};
MinComplementReduction ReduceSatToMinComplement(const CNF3& phi);

/// Theorems 4 and 5 share their shape: a succinct view (one product of
/// per-variable two-row factors plus one extra tuple s) and an insertion.
struct SuccinctInsertionReduction {
  Universe universe;
  FDSet fds;
  AttrSet view_x;
  AttrSet comp_y;
  SuccinctView view{AttrSet()};
  Tuple t;

  int n = 0, m = 0;
  /// Theorem 4 only: the number of universally quantified variables.
  int num_universal = 0;
};

/// Theorem 4: translatability of the insertion == ∀x1..xk ∃rest phi.
SuccinctInsertionReduction ReduceForallExistsToInsertion(const CNF3& phi,
                                                         int num_universal);

/// Theorem 5: Test 1 accepts the insertion == phi unsatisfiable.
SuccinctInsertionReduction ReduceUnsatToTest1(const CNF3& phi);

/// Theorem 7: U = X1 X1' .. Xn Xn' F1..Fm, FDs Lji -> Fj; the view is all
/// Xi/Xi'; V = product of the per-variable factors; t is all-ones.
struct ComplementExistenceReduction {
  Universe universe;
  FDSet fds;
  AttrSet view_x;
  SuccinctView view{AttrSet()};
  Tuple t;

  int n = 0, m = 0;
  std::vector<AttrId> xi, xi_neg;

  /// Reads a satisfying assignment off a found complement.
  std::vector<bool> DecodeAssignment(const AttrSet& y) const;
};
ComplementExistenceReduction ReduceSatToComplementExistence(const CNF3& phi);

}  // namespace relview

#endif  // RELVIEW_REDUCTIONS_REDUCTIONS_H_
