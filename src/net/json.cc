#include "net/json.h"

#include <cstdint>
#include <cstdio>

namespace relview {
namespace net {

const JsonValue* JsonValue::Get(const std::string& key) const {
  if (type_ != Type::kObject) return nullptr;
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

/// Hand-rolled recursive-descent parser over a byte range; depth-limited.
class JsonParser {
 public:
  JsonParser(const std::string& text, int max_depth)
      : text_(text), max_depth_(max_depth) {}

  Result<JsonValue> Parse() {
    RELVIEW_ASSIGN_OR_RETURN(JsonValue v, ParseValue(0));
    SkipSpace();
    if (pos_ != text_.size()) {
      return Error("trailing garbage after JSON document");
    }
    return v;
  }

 private:
  Status Error(const std::string& what) const {
    return Status::InvalidArgument("json: " + what + " at byte " +
                                   std::to_string(pos_));
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeWord(const char* w) {
    const size_t len = std::string(w).size();
    if (text_.compare(pos_, len, w) == 0) {
      pos_ += len;
      return true;
    }
    return false;
  }

  Result<JsonValue> ParseValue(int depth) {
    if (depth > max_depth_) return Error("nesting deeper than limit");
    SkipSpace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    const char c = text_[pos_];
    switch (c) {
      case '{': return ParseObject(depth);
      case '[': return ParseArray(depth);
      case '"': {
        RELVIEW_ASSIGN_OR_RETURN(std::string s, ParseString());
        return JsonValue::String(std::move(s));
      }
      case 't':
        if (ConsumeWord("true")) return JsonValue::Bool(true);
        return Error("bad literal");
      case 'f':
        if (ConsumeWord("false")) return JsonValue::Bool(false);
        return Error("bad literal");
      case 'n':
        if (ConsumeWord("null")) return JsonValue::Null();
        return Error("bad literal");
      default: return ParseNumber();
    }
  }

  Result<JsonValue> ParseNumber() {
    const size_t start = pos_;
    bool negative = false;
    if (pos_ < text_.size() && text_[pos_] == '-') {
      negative = true;
      ++pos_;
    }
    uint64_t magnitude = 0;
    size_t digits = 0;
    while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
      const uint64_t d = static_cast<uint64_t>(text_[pos_] - '0');
      if (magnitude > (UINT64_MAX - d) / 10) {
        return Error("integer overflow");
      }
      magnitude = magnitude * 10 + d;
      ++digits;
      ++pos_;
    }
    if (digits == 0) return Error("bad number");
    if (pos_ < text_.size() &&
        (text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E')) {
      return Error("non-integer numbers are not accepted");
    }
    const uint64_t limit =
        negative ? (1ULL << 63) : (1ULL << 63) - 1;  // |INT64_MIN| / INT64_MAX
    if (magnitude > limit) {
      pos_ = start;
      return Error("integer out of int64 range");
    }
    const int64_t v = negative ? -static_cast<int64_t>(magnitude - 1) - 1
                               : static_cast<int64_t>(magnitude);
    return JsonValue::Int(v);
  }

  Result<std::string> ParseString() {
    ++pos_;  // opening quote
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) return Error("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        return Error("raw control character in string");
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) return Error("dangling escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          RELVIEW_ASSIGN_OR_RETURN(uint32_t cp, ParseHex4());
          // Surrogate pairs: decode the low half when present; a lone
          // surrogate becomes U+FFFD.
          if (cp >= 0xD800 && cp <= 0xDBFF &&
              text_.compare(pos_, 2, "\\u") == 0) {
            pos_ += 2;
            RELVIEW_ASSIGN_OR_RETURN(uint32_t lo, ParseHex4());
            if (lo >= 0xDC00 && lo <= 0xDFFF) {
              cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
            } else {
              cp = 0xFFFD;
            }
          } else if (cp >= 0xD800 && cp <= 0xDFFF) {
            cp = 0xFFFD;
          }
          AppendUtf8(cp, &out);
          break;
        }
        default: return Error("bad escape");
      }
    }
  }

  Result<uint32_t> ParseHex4() {
    if (pos_ + 4 > text_.size()) return Error("short \\u escape");
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      v <<= 4;
      if (c >= '0' && c <= '9') {
        v |= static_cast<uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        v |= static_cast<uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        v |= static_cast<uint32_t>(c - 'A' + 10);
      } else {
        return Error("bad \\u escape");
      }
    }
    return v;
  }

  static void AppendUtf8(uint32_t cp, std::string* out) {
    if (cp < 0x80) {
      *out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      *out += static_cast<char>(0xC0 | (cp >> 6));
      *out += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      *out += static_cast<char>(0xE0 | (cp >> 12));
      *out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      *out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      *out += static_cast<char>(0xF0 | (cp >> 18));
      *out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      *out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      *out += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  Result<JsonValue> ParseArray(int depth) {
    ++pos_;  // '['
    JsonValue v(JsonValue::Type::kArray);
    SkipSpace();
    if (Consume(']')) return v;
    while (true) {
      RELVIEW_ASSIGN_OR_RETURN(JsonValue elem, ParseValue(depth + 1));
      v.array_.push_back(std::move(elem));
      if (Consume(',')) continue;
      if (Consume(']')) return v;
      return Error("expected ',' or ']'");
    }
  }

  Result<JsonValue> ParseObject(int depth) {
    ++pos_;  // '{'
    JsonValue v(JsonValue::Type::kObject);
    SkipSpace();
    if (Consume('}')) return v;
    while (true) {
      SkipSpace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected object key");
      }
      RELVIEW_ASSIGN_OR_RETURN(std::string key, ParseString());
      if (!Consume(':')) return Error("expected ':'");
      RELVIEW_ASSIGN_OR_RETURN(JsonValue val, ParseValue(depth + 1));
      v.members_.emplace_back(std::move(key), std::move(val));
      if (Consume(',')) continue;
      if (Consume('}')) return v;
      return Error("expected ',' or '}'");
    }
  }

  const std::string& text_;
  const int max_depth_;
  size_t pos_ = 0;
};

Result<JsonValue> ParseJson(const std::string& text, int max_depth) {
  return JsonParser(text, max_depth).Parse();
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(c));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace net
}  // namespace relview
