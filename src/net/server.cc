#include "net/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "net/json.h"
#include "obs/trace.h"
#include "obs/trace_context.h"
#include "service/update.h"
#include "shard/sharded_service.h"
#include "relational/value.h"

namespace relview {
namespace net {
namespace {

int64_t NowNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Sends all of `data`; false on a connection error. MSG_NOSIGNAL keeps a
/// dead peer from raising SIGPIPE at the process.
bool WriteAll(int fd, const std::string& data) {
  size_t off = 0;
  while (off < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

/// BuildResponse plus the `x-relview-trace` echo: every response produced
/// while a request context is installed — 200s, 409s, and the 429/503
/// refusal paths alike — carries the resolved trace id back to the
/// client, so a caller can correlate any outcome with the server's spans
/// and wide events.
std::string TracedResponse(int status, const std::string& content_type,
                           const std::string& body, bool keep_alive,
                           std::vector<std::string> extra_headers = {}) {
  const TraceContext& ctx = CurrentTraceContext();
  if (ctx.valid()) {
    extra_headers.push_back("x-relview-trace: " + TraceIdHex(ctx.trace_id));
  }
  return BuildResponse(status, content_type, body, keep_alive, extra_headers);
}

std::string ErrorBody(const std::string& error, const std::string& detail) {
  std::string out = "{\"error\":\"" + JsonEscape(error) + "\"";
  if (!detail.empty()) out += ",\"detail\":\"" + JsonEscape(detail) + "\"";
  out += "}";
  return out;
}

/// One wire value -> one Value. Constants only: ids must fit below the
/// null tag; labeled nulls never travel over the wire inbound.
Result<Value> ParseWireValue(const JsonValue& v) {
  if (!v.is_int()) {
    return Status::InvalidArgument("tuple values must be integers");
  }
  const int64_t raw = v.int_value();
  if (raw < 0 || raw >= static_cast<int64_t>(Value::kNullTag)) {
    return Status::InvalidArgument("tuple value out of constant range");
  }
  return Value::Const(static_cast<uint32_t>(raw));
}

Result<Tuple> ParseWireRow(const JsonValue* v, int arity,
                           const char* field) {
  if (v == nullptr || !v->is_array()) {
    return Status::InvalidArgument(std::string("update is missing array \"") +
                                   field + "\"");
  }
  if (static_cast<int>(v->array().size()) != arity) {
    return Status::InvalidArgument(
        std::string("\"") + field + "\" has arity " +
        std::to_string(v->array().size()) + ", view has arity " +
        std::to_string(arity));
  }
  Tuple t(arity);
  for (int i = 0; i < arity; ++i) {
    RELVIEW_ASSIGN_OR_RETURN(Value val, ParseWireValue(v->array()[i]));
    t[i] = val;
  }
  return t;
}

/// {"op":"insert","row":[...]} / {"op":"delete","row":[...]} /
/// {"op":"replace","from":[...],"to":[...]}  ->  ViewUpdate.
Result<std::vector<ViewUpdate>> ParseWireUpdates(const JsonValue& doc,
                                                 int arity) {
  const JsonValue* arr = doc.Get("updates");
  if (arr == nullptr || !arr->is_array()) {
    return Status::InvalidArgument("body needs an \"updates\" array");
  }
  std::vector<ViewUpdate> updates;
  updates.reserve(arr->array().size());
  for (size_t i = 0; i < arr->array().size(); ++i) {
    const JsonValue& u = arr->array()[i];
    const std::string at = "updates[" + std::to_string(i) + "]: ";
    if (!u.is_object()) {
      return Status::InvalidArgument(at + "not an object");
    }
    const JsonValue* op = u.Get("op");
    if (op == nullptr || !op->is_string()) {
      return Status::InvalidArgument(at + "missing \"op\"");
    }
    const std::string& kind = op->string_value();
    if (kind == "insert" || kind == "delete") {
      auto row = ParseWireRow(u.Get("row"), arity, "row");
      if (!row.ok()) {
        return Status::InvalidArgument(at + row.status().message());
      }
      Tuple t = std::move(row).value();
      updates.push_back(kind == "insert" ? ViewUpdate::Insert(std::move(t))
                                         : ViewUpdate::Delete(std::move(t)));
    } else if (kind == "replace") {
      auto from = ParseWireRow(u.Get("from"), arity, "from");
      if (!from.ok()) {
        return Status::InvalidArgument(at + from.status().message());
      }
      auto to = ParseWireRow(u.Get("to"), arity, "to");
      if (!to.ok()) {
        return Status::InvalidArgument(at + to.status().message());
      }
      updates.push_back(ViewUpdate::Replace(std::move(from).value(),
                                            std::move(to).value()));
    } else {
      return Status::InvalidArgument(at + "unknown op \"" + kind + "\"");
    }
  }
  return updates;
}

/// Appends one relation's rows to an open JSON array. Constants render as
/// their id; labeled nulls as the string "?<id>" (outbound only — the
/// database projection can contain nulls introduced by insertions).
void AppendRows(const Relation& rel, bool* first_row, std::string* out) {
  for (const Tuple& t : rel.rows()) {
    if (!*first_row) *out += ",";
    *first_row = false;
    *out += "[";
    for (int i = 0; i < t.arity(); ++i) {
      if (i > 0) *out += ",";
      if (t[i].is_null()) {
        *out += "\"?" + std::to_string(t[i].index()) + "\"";
      } else {
        *out += std::to_string(t[i].index());
      }
    }
    *out += "]";
  }
}

/// Renders the composed rows of every shard's `view` (or `database` when
/// `database` is true) as one JSON array — shards partition the relation,
/// so concatenation IS the composed instance.
std::string ShardRowsJson(const ShardedSnapshot& snap, bool database) {
  std::string out = "[";
  bool first_row = true;
  for (const ViewSnapshot& s : snap.shards) {
    const auto& rel = database ? s.database : s.view;
    if (rel != nullptr) AppendRows(*rel, &first_row, &out);
  }
  out += "]";
  return out;
}

}  // namespace

Result<std::unique_ptr<HttpServer>> HttpServer::Start(
    TenantSet* tenants, TelemetryRegistry* registry, ServerOptions options) {
  if (tenants == nullptr || tenants->size() == 0) {
    return Status::InvalidArgument("HttpServer needs at least one tenant");
  }
  if (options.max_connections <= 0) {
    return Status::InvalidArgument("max_connections must be positive");
  }
  std::unique_ptr<HttpServer> server(
      new HttpServer(tenants, registry, options));
  RELVIEW_RETURN_IF_ERROR(server->Listen());
  if (registry != nullptr) {
    WriteGate* gate = server->gate_.get();
    NetMetrics* metrics = &server->metrics_;
    registry->Register("net", [metrics, gate] {
      std::vector<MetricFamily> out = metrics->Collect();
      out.push_back(GaugeFamily("relview_net_write_gate_depth",
                                "Writes holding admission tickets",
                                static_cast<double>(gate->depth())));
      out.push_back(GaugeFamily("relview_net_write_gate_capacity",
                                "Write admission capacity",
                                static_cast<double>(gate->capacity())));
      out.push_back(CounterFamily("relview_net_write_gate_sheds_total",
                                  "Batches shed with 429",
                                  static_cast<double>(gate->sheds())));
      out.push_back(GaugeFamily(
          "relview_net_write_latency_ewma_seconds",
          "EWMA of admitted write latency (prices Retry-After)",
          static_cast<double>(gate->ewma_write_nanos()) / 1e9));
      return out;
    });
    registry->RegisterJson("net", [metrics, gate] {
      std::string j = metrics->ToJson();
      j.pop_back();  // strip '}' to splice the gate in
      j += ",\"write_gate\":{\"depth\":" + std::to_string(gate->depth()) +
           ",\"capacity\":" + std::to_string(gate->capacity()) +
           ",\"sheds\":" + std::to_string(gate->sheds()) +
           ",\"ewma_write_nanos\":" +
           std::to_string(gate->ewma_write_nanos()) + "}}";
      return j;
    });
  }
  const int workers = options.worker_threads > 0 ? options.worker_threads
                                                 : options.max_connections;
  server->pool_ = std::make_unique<ThreadPool>(workers);
  server->acceptor_ = std::thread([s = server.get()] { s->AcceptLoop(); });
  return server;
}

HttpServer::HttpServer(TenantSet* tenants, TelemetryRegistry* registry,
                       const ServerOptions& options)
    : tenants_(tenants),
      registry_(registry),
      options_(options),
      gate_(std::make_unique<WriteGate>(options.max_write_queue)) {}

HttpServer::~HttpServer() { Stop(); }

Status HttpServer::Listen() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::Internal(std::string("socket: ") + std::strerror(errno));
  }
  int yes = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &yes, sizeof(yes));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("bad listen address: " + options_.host);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    return Status::Internal(std::string("bind ") + options_.host + ":" +
                            std::to_string(options_.port) + ": " +
                            std::strerror(errno));
  }
  if (::listen(listen_fd_, 256) < 0) {
    return Status::Internal(std::string("listen: ") + std::strerror(errno));
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) <
      0) {
    return Status::Internal(std::string("getsockname: ") +
                            std::strerror(errno));
  }
  port_ = ntohs(bound.sin_port);
  return Status::OK();
}

void HttpServer::BeginDrain() {
  // Async-signal-safe: one atomic store plus shutdown(2). The listen fd is
  // fixed before the acceptor starts and closed only after Wait() joins
  // everything, so the handler never races a close.
  draining_.store(true, std::memory_order_release);
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
}

void HttpServer::Stop() {
  BeginDrain();
  Wait();
}

void HttpServer::Wait() {
  if (stopped_.exchange(true)) return;
  if (acceptor_.joinable()) acceptor_.join();
  {
    MutexLock lock(conn_mu_);
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::milliseconds(options_.drain_timeout_ms);
    while (!open_fds_.empty()) {
      const auto now = std::chrono::steady_clock::now();
      if (now >= deadline) break;
      conn_cv_.WaitFor(conn_mu_,
                       std::chrono::duration_cast<std::chrono::nanoseconds>(
                           deadline - now));
    }
    // Past the grace period: shut lingering sockets down so their workers'
    // recv() returns and they exit through the normal path.
    for (int fd : open_fds_) ::shutdown(fd, SHUT_RDWR);
    while (!open_fds_.empty()) conn_cv_.Wait(conn_mu_);
  }
  pool_.reset();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (registry_ != nullptr) registry_->Unregister("net");
}

bool HttpServer::TrackConnection(int fd) {
  MutexLock lock(conn_mu_);
  if (static_cast<int>(open_fds_.size()) >= options_.max_connections) {
    return false;
  }
  open_fds_.insert(fd);
  return true;
}

void HttpServer::UntrackConnection(int fd) {
  {
    MutexLock lock(conn_mu_);
    open_fds_.erase(fd);
  }
  conn_cv_.NotifyAll();
}

void HttpServer::AcceptLoop() {
  while (true) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      if (draining()) return;
      if (errno == ECONNABORTED || errno == EMFILE || errno == ENFILE) {
        continue;  // transient; keep the acceptor alive
      }
      return;
    }
    if (draining()) {
      metrics_.RecordRefusal(RefusalKind::kDraining);
      const std::string resp = BuildResponse(
          503, "application/json", ErrorBody("draining", ""), false);
      WriteAll(fd, resp);
      metrics_.RecordResponse(503);
      ::close(fd);
      continue;
    }
    if (!TrackConnection(fd)) {
      // Over the connection cap: refuse inline from the acceptor so the
      // excess connection never occupies a worker.
      metrics_.RecordRefusal(RefusalKind::kOverCapacity);
      const std::string resp = BuildResponse(
          503, "application/json",
          ErrorBody("over_capacity", "connection limit reached"), false);
      WriteAll(fd, resp);
      metrics_.RecordResponse(503);
      ::close(fd);
      continue;
    }
    pool_->Submit([this, fd] { ServeConnection(fd); });
  }
}

void HttpServer::ServeConnection(int fd) {
  metrics_.ConnectionOpened();
  if (options_.idle_timeout_ms > 0) {
    timeval tv{};
    tv.tv_sec = options_.idle_timeout_ms / 1000;
    tv.tv_usec = (options_.idle_timeout_ms % 1000) * 1000;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  HttpLimits limits;
  limits.max_header_bytes = options_.max_header_bytes;
  limits.max_body_bytes = options_.max_body_bytes;
  RequestParser parser(limits);
  char buf[16 * 1024];

  while (true) {
    // Pump bytes until one full request (or an error) is buffered.
    bool closed = false;
    while (!parser.complete() && !parser.error()) {
      const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
      if (n > 0) {
        metrics_.AddBytesRead(static_cast<uint64_t>(n));
        parser.Feed(buf, static_cast<size_t>(n));
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        if (parser.mid_request()) {
          // Torn request: the peer stalled mid-message.
          const std::string resp = BuildResponse(
              408, "application/json",
              ErrorBody("timeout", "request not completed in time"), false);
          if (WriteAll(fd, resp)) {
            metrics_.AddBytesWritten(resp.size());
          }
          metrics_.RecordResponse(408);
        }
        closed = true;  // idle keep-alive connection: close silently
        break;
      }
      closed = true;  // peer closed or hard error
      break;
    }
    if (closed) break;

    if (parser.error()) {
      metrics_.RecordRefusal(RefusalKind::kParse);
      const std::string resp =
          BuildResponse(parser.error_status(), "application/json",
                        ErrorBody("bad_request", parser.error_detail()),
                        false);
      if (WriteAll(fd, resp)) metrics_.AddBytesWritten(resp.size());
      metrics_.RecordResponse(parser.error_status());
      break;
    }

    const int64_t received = NowNanos();
    bool keep_open = true;
    const HttpRequest& req = parser.request();
    Route route = Route::kOther;
    if (req.path == "/v1/batch") {
      route = Route::kBatch;
    } else if (req.path == "/v1/snapshot") {
      route = Route::kSnapshot;
    } else if (req.path == "/healthz") {
      route = Route::kHealth;
    } else if (req.path == "/metrics") {
      route = Route::kMetrics;
    } else if (req.path == "/v1/trace") {
      route = Route::kTrace;
    }
    metrics_.RecordRequest(route);
    // Resolve the request's trace identity before any handler span opens:
    // adopt the caller's id from `x-relview-trace` (a propagated trace is
    // always kept while the tracer is on — the caller already decided it
    // is interesting), else mint one and draw the head-sampling decision
    // here, so the whole span tree under this request follows one verdict.
    TraceContext ctx;
    if (ParseTraceIdHex(req.Header("x-relview-trace"), &ctx.trace_id)) {
      ctx.sampled = GlobalTracer().enabled();
    } else {
      ctx.trace_id = NewTraceId();
      ctx.sampled = GlobalTracer().HeadSample();
    }
    std::string resp;
    uint64_t latency_trace = 0;
    {
      ScopedTraceContext scoped(ctx);
      resp = Handle(req, received, &keep_open);
      latency_trace = CurrentSampledTraceId();
    }
    if (!WriteAll(fd, resp)) break;
    metrics_.AddBytesWritten(resp.size());
    metrics_.RecordLatency(route, NowNanos() - received, latency_trace);
    if (!keep_open) break;
    parser.Next();
  }

  ::close(fd);
  metrics_.ConnectionClosed();
  UntrackConnection(fd);
}

std::string HttpServer::Handle(const HttpRequest& req, int64_t received_nanos,
                               bool* keep_open) {
  *keep_open = req.keep_alive() && !draining();
  int status;
  std::string body;
  std::string content_type = "application/json";
  std::vector<std::string> extra;

  if (req.path == "/v1/batch") {
    if (req.method != "POST") {
      status = 405;
      body = ErrorBody("method_not_allowed", "use POST /v1/batch");
      extra.push_back("Allow: POST");
    } else {
      std::string resp = HandleBatch(req, received_nanos, keep_open);
      return resp;
    }
  } else if (req.path == "/v1/snapshot") {
    if (req.method != "GET") {
      status = 405;
      body = ErrorBody("method_not_allowed", "use GET /v1/snapshot");
      extra.push_back("Allow: GET");
    } else {
      return HandleSnapshot(req);
    }
  } else if (req.path == "/healthz") {
    if (draining()) {
      status = 503;
      body = ErrorBody("draining", "");
    } else {
      status = 200;
      content_type = "text/plain";
      body = "ok\n";
    }
  } else if (req.path == "/metrics") {
    return HandleMetrics(req);
  } else if (req.path == "/v1/trace") {
    if (req.method != "GET") {
      status = 405;
      body = ErrorBody("method_not_allowed", "use GET /v1/trace");
      extra.push_back("Allow: GET");
    } else {
      return HandleTrace(req);
    }
  } else {
    status = 404;
    body = ErrorBody("not_found", req.path);
  }
  const bool ka = *keep_open;
  std::string out = TracedResponse(status, content_type, body, ka, extra);
  metrics_.RecordResponse(status);
  return out;
}

std::string HttpServer::HandleBatch(const HttpRequest& req,
                                    int64_t received_nanos, bool* keep_open) {
  // Root span of the request's tree: router/shard/commit spans all parent
  // back (transitively) to this one, so one request renders as one tree.
  RELVIEW_TRACE_SPAN_N(root, "net.batch");
  WideEvent ev;
  ev.trace_id = CurrentTraceContext().trace_id;
  std::string resp = HandleBatchInner(req, received_nanos, keep_open, &ev);
  root.Finish();
  ev.total_nanos = NowNanos() - received_nanos;
  // Failures are forced through the sampler: the interesting lines are
  // never the ones sampled away.
  GlobalWideEvents().Emit(ev, /*forced=*/ev.http_status >= 500);
  return resp;
}

std::string HttpServer::HandleBatchInner(const HttpRequest& req,
                                         int64_t received_nanos,
                                         bool* keep_open, WideEvent* ev) {
  if (draining()) {
    metrics_.RecordRefusal(RefusalKind::kDraining);
    metrics_.RecordResponse(503);
    *keep_open = false;
    ev->http_status = 503;
    ev->admission = "draining";
    return TracedResponse(503, "application/json", ErrorBody("draining", ""),
                          false);
  }

  auto doc = ParseJson(req.body);
  if (!doc.ok()) {
    metrics_.RecordRefusal(RefusalKind::kParse);
    metrics_.RecordResponse(400);
    ev->http_status = 400;
    ev->admission = "parse_error";
    ev->detail = doc.status().message();
    return TracedResponse(400, "application/json",
                          ErrorBody("bad_json", doc.status().message()),
                          *keep_open);
  }
  const JsonValue* tenant = doc->Get("tenant");
  if (tenant == nullptr || !tenant->is_string()) {
    metrics_.RecordRefusal(RefusalKind::kParse);
    metrics_.RecordResponse(400);
    ev->http_status = 400;
    ev->admission = "parse_error";
    ev->detail = "body needs a \"tenant\" string";
    return TracedResponse(
        400, "application/json",
        ErrorBody("bad_request", "body needs a \"tenant\" string"),
        *keep_open);
  }
  ev->tenant = tenant->string_value();
  ShardedService* svc = tenants_->Find(tenant->string_value());
  if (svc == nullptr) {
    metrics_.RecordResponse(404);
    ev->http_status = 404;
    ev->admission = "unknown_tenant";
    return TracedResponse(
        404, "application/json",
        ErrorBody("unknown_tenant", tenant->string_value()), *keep_open);
  }
  auto updates = ParseWireUpdates(*doc, svc->view_attrs().Count());
  if (!updates.ok()) {
    metrics_.RecordRefusal(RefusalKind::kParse);
    metrics_.RecordResponse(400);
    ev->http_status = 400;
    ev->admission = "parse_error";
    ev->detail = updates.status().message();
    return TracedResponse(
        400, "application/json",
        ErrorBody("bad_request", updates.status().message()), *keep_open);
  }
  ev->batch_size = static_cast<int>(updates->size());

  // Deadline: checked after body parse, right before the write path — the
  // request dies here rather than adding load the client stopped waiting
  // for. `x-relview-deadline-ms` may only tighten the configured default.
  int64_t deadline_ms = options_.request_deadline_ms;
  const std::string& hdr = req.Header("x-relview-deadline-ms");
  if (!hdr.empty()) {
    errno = 0;
    char* end = nullptr;
    const long v = std::strtol(hdr.c_str(), &end, 10);
    if (errno == 0 && end != nullptr && *end == '\0' && v >= 0 &&
        (deadline_ms < 0 || v < deadline_ms)) {
      deadline_ms = v;
    }
  }
  if (deadline_ms >= 0 &&
      NowNanos() - received_nanos >= deadline_ms * 1'000'000) {
    metrics_.RecordRefusal(RefusalKind::kDeadline);
    metrics_.RecordResponse(503);
    ev->http_status = 503;
    ev->admission = "deadline";
    return TracedResponse(
        503, "application/json",
        ErrorBody("deadline", "request deadline expired before apply"),
        *keep_open);
  }

  WriteGate::Ticket ticket(*gate_);
  if (!ticket.admitted()) {
    const int retry_after = gate_->RetryAfterSeconds();
    metrics_.RecordRefusal(RefusalKind::kShed429);
    metrics_.RecordResponse(429);
    ev->http_status = 429;
    ev->admission = "shed";
    return TracedResponse(
        429, "application/json",
        "{\"error\":\"shed\",\"retry_after\":" + std::to_string(retry_after) +
            "}",
        *keep_open, {"Retry-After: " + std::to_string(retry_after)});
  }
  ev->admission = "admitted";

  const int64_t t0 = NowNanos();
  const BatchResult result = svc->ApplyBatch(*updates);
  gate_->RecordWriteLatency(NowNanos() - t0);
  // Per-stage attribution for the wide event, aggregated across shards.
  ev->stage_nanos = result.timings.stage_nanos;
  ev->append_nanos = result.timings.append_nanos;
  ev->commit_wait_nanos = result.timings.commit_wait_nanos;
  ev->cohort_batches = result.timings.cohort_batches;
  ev->led_cohort = result.timings.led_cohort;
  ev->shard_mask = result.timings.shard_mask;
  ev->shards_touched = result.timings.shards_touched;
  ev->straggler_shard = result.timings.straggler_shard;
  ev->straggler_nanos = result.timings.straggler_nanos;

  if (result.ok()) {
    metrics_.RecordResponse(200);
    ev->http_status = 200;
    return TracedResponse(
        200, "application/json",
        "{\"status\":\"ok\",\"version\":" + std::to_string(svc->version()) +
            ",\"applied\":" + std::to_string(updates->size()) + "}",
        *keep_open);
  }
  ev->detail = result.status.message();
  const StatusCode code = result.status.code();
  if (code == StatusCode::kInternal || code == StatusCode::kCorruption) {
    // Durability failure (journal append/fsync, store rotation): the batch
    // was rolled back and nothing was acked. 503 so clients retry against
    // a recovered process rather than treating it as a semantic verdict.
    metrics_.RecordRefusal(RefusalKind::kDurability);
    metrics_.RecordResponse(503);
    ev->http_status = 503;
    return TracedResponse(
        503, "application/json",
        ErrorBody("durability", result.status.message()), *keep_open);
  }
  metrics_.RecordResponse(409);
  ev->http_status = 409;
  std::string body = "{\"status\":\"rejected\",\"failed_index\":" +
                     std::to_string(result.failed_index) + ",\"code\":\"" +
                     StatusCodeName(code) + "\",\"detail\":\"" +
                     JsonEscape(result.status.message()) + "\"}";
  return TracedResponse(409, "application/json", body, *keep_open);
}

std::string HttpServer::HandleSnapshot(const HttpRequest& req) {
  const std::string tenant = req.QueryParam("tenant");
  if (tenant.empty()) {
    metrics_.RecordResponse(400);
    return TracedResponse(
        400, "application/json",
        ErrorBody("bad_request", "need ?tenant=<name>"), !draining());
  }
  ShardedService* svc = tenants_->Find(tenant);
  if (svc == nullptr) {
    metrics_.RecordResponse(404);
    return TracedResponse(404, "application/json",
                          ErrorBody("unknown_tenant", tenant), !draining());
  }
  const ShardedSnapshot snap = svc->Snapshot();
  std::string body = "{\"tenant\":\"" + JsonEscape(tenant) +
                     "\",\"version\":" + std::to_string(snap.version) +
                     ",\"shards\":" + std::to_string(snap.shards.size()) +
                     ",\"rows\":" + ShardRowsJson(snap, /*database=*/false);
  if (req.QueryParam("include") == "database") {
    body += ",\"database\":" + ShardRowsJson(snap, /*database=*/true);
  }
  body += "}";
  metrics_.RecordResponse(200);
  return TracedResponse(200, "application/json", body, !draining());
}

std::string HttpServer::HandleMetrics(const HttpRequest& req) {
  std::string body;
  std::string content_type;
  if (req.QueryParam("format") == "json") {
    content_type = "application/json";
    body = registry_ != nullptr ? registry_->RenderJson()
                                : "{\"net\":" + metrics_.ToJson() + "}";
  } else {
    content_type = "text/plain; version=0.0.4";
    if (registry_ != nullptr) {
      body = registry_->RenderPrometheus();
    } else {
      TelemetryRegistry local;
      local.Register("net", [this] { return metrics_.Collect(); });
      body = local.RenderPrometheus();
    }
  }
  metrics_.RecordResponse(200);
  return TracedResponse(200, content_type, body, !draining());
}

std::string HttpServer::HandleTrace(const HttpRequest& req) {
  // Export first, then optionally clear: ?clear=1 lets a smoke test or an
  // operator take one consistent dump per incident without a racing
  // scrape re-reading the same spans.
  std::string body = GlobalTracer().ExportChromeTrace();
  if (req.QueryParam("clear") == "1") GlobalTracer().Clear();
  metrics_.RecordResponse(200);
  return TracedResponse(200, "application/json", body, !draining());
}

}  // namespace net
}  // namespace relview
