#include "net/metrics.h"

namespace relview {
namespace net {

const char* RouteName(Route route) {
  switch (route) {
    case Route::kBatch: return "batch";
    case Route::kSnapshot: return "snapshot";
    case Route::kHealth: return "health";
    case Route::kMetrics: return "metrics";
    case Route::kTrace: return "trace";
    case Route::kOther: return "other";
    case Route::kNumRoutes: break;
  }
  return "?";
}

const char* RefusalKindName(RefusalKind kind) {
  switch (kind) {
    case RefusalKind::kShed429: return "shed";
    case RefusalKind::kDeadline: return "deadline";
    case RefusalKind::kDraining: return "draining";
    case RefusalKind::kOverCapacity: return "over_capacity";
    case RefusalKind::kDurability: return "durability";
    case RefusalKind::kParse: return "parse";
    case RefusalKind::kNumRefusalKinds: break;
  }
  return "?";
}

int NetMetrics::StatusSlot(int status) {
  for (size_t i = 0; i < kStatusCodes.size(); ++i) {
    if (kStatusCodes[i] == status) return static_cast<int>(i);
  }
  return static_cast<int>(kStatusCodes.size());
}

void NetMetrics::RecordResponse(int status) {
  responses_[static_cast<size_t>(StatusSlot(status))].fetch_add(
      1, std::memory_order_relaxed);
}

uint64_t NetMetrics::responses(int status) const {
  return responses_[static_cast<size_t>(StatusSlot(status))].load(
      std::memory_order_relaxed);
}

void NetMetrics::RecordLatency(Route route, int64_t nanos,
                               uint64_t trace_id) {
  latency_[static_cast<int>(route)].RecordTraced(nanos, trace_id);
}

std::vector<MetricFamily> NetMetrics::Collect() const {
  std::vector<MetricFamily> out;
  MetricFamily requests_fam = CounterFamily(
      "relview_net_requests_total", "HTTP requests by route", 0);
  requests_fam.samples.clear();
  for (int r = 0; r < kRoutes; ++r) {
    requests_fam.samples.push_back(
        {Label("route", RouteName(static_cast<Route>(r))),
         static_cast<double>(requests(static_cast<Route>(r)))});
  }
  out.push_back(std::move(requests_fam));

  MetricFamily responses_fam = CounterFamily(
      "relview_net_responses_total", "HTTP responses by status", 0);
  responses_fam.samples.clear();
  for (size_t i = 0; i < kStatusCodes.size(); ++i) {
    responses_fam.samples.push_back(
        {Label("status", std::to_string(kStatusCodes[i])),
         static_cast<double>(
             responses_[i].load(std::memory_order_relaxed))});
  }
  responses_fam.samples.push_back(
      {Label("status", "other"),
       static_cast<double>(responses_[kStatusCodes.size()].load(
           std::memory_order_relaxed))});
  out.push_back(std::move(responses_fam));

  MetricFamily refusals_fam = CounterFamily(
      "relview_net_refusals_total",
      "Requests refused before being served, by reason", 0);
  refusals_fam.samples.clear();
  for (int k = 0; k < kRefusals; ++k) {
    refusals_fam.samples.push_back(
        {Label("reason", RefusalKindName(static_cast<RefusalKind>(k))),
         static_cast<double>(refusals(static_cast<RefusalKind>(k)))});
  }
  out.push_back(std::move(refusals_fam));

  out.push_back(GaugeFamily("relview_net_connections",
                            "Currently open HTTP connections",
                            static_cast<double>(connections())));
  out.push_back(CounterFamily("relview_net_connections_total",
                              "Connections accepted since start",
                              static_cast<double>(connections_total())));
  out.push_back(CounterFamily(
      "relview_net_bytes_read_total", "Request bytes read",
      static_cast<double>(bytes_read_.load(std::memory_order_relaxed))));
  out.push_back(CounterFamily(
      "relview_net_bytes_written_total", "Response bytes written",
      static_cast<double>(bytes_written_.load(std::memory_order_relaxed))));
  for (int r = 0; r < kRoutes; ++r) {
    const Route route = static_cast<Route>(r);
    out.push_back(SummaryFamily(
        std::string("relview_net_") + RouteName(route) + "_latency_seconds",
        std::string("Handling latency for route ") + RouteName(route),
        latency(route)));
  }
  return out;
}

std::string NetMetrics::ToJson() const {
  std::string out = "{";
  auto add = [&out](const std::string& key, uint64_t v) {
    if (out.size() > 1) out += ",";
    out += "\"" + key + "\":" + std::to_string(v);
  };
  for (int r = 0; r < kRoutes; ++r) {
    add(std::string("requests_") + RouteName(static_cast<Route>(r)),
        requests(static_cast<Route>(r)));
  }
  add("responses_200", responses(200));
  add("responses_409", responses(409));
  add("responses_429", responses(429));
  add("responses_503", responses(503));
  for (int k = 0; k < kRefusals; ++k) {
    add(std::string("refused_") +
            RefusalKindName(static_cast<RefusalKind>(k)),
        refusals(static_cast<RefusalKind>(k)));
  }
  add("connections", static_cast<uint64_t>(
                         connections() < 0 ? 0 : connections()));
  add("connections_total", connections_total());
  add("bytes_read", bytes_read_.load(std::memory_order_relaxed));
  add("bytes_written", bytes_written_.load(std::memory_order_relaxed));
  out += ",\"batch_latency\":" + latency(Route::kBatch).ToJson();
  out += ",\"snapshot_latency\":" + latency(Route::kSnapshot).ToJson();
  out += "}";
  return out;
}

}  // namespace net
}  // namespace relview
