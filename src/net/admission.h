// Admission control for the network front-end: the bounded write gate
// that sheds load *before* requests pile onto the service's writer mutex
// and journal fsync queue.
//
// Model: every mutating request (POST /v1/batch) must hold a write
// ticket while it runs ApplyBatch. Tickets are bounded; when they are
// exhausted the server answers 429 with a Retry-After computed from the
// observed batch latency (journal fsync included) times the current
// depth — i.e. an honest estimate of when a retry will find a free slot.
// Because a ticket covers the whole check→journal→fsync→publish path,
// the gate's depth *is* the journal/fsync queue depth as seen from the
// socket side; `UpdateService::pending_writers()` exposes the same
// quantity from the service side and the two are exported next to each
// other in /metrics.
//
// The gate never blocks: a request either gets a ticket immediately or
// is shed. The "queue" being bounded is the set of connection threads
// parked on the writer mutex — exactly the thing that melted first in
// the pre-net benchmarks when offered load exceeded the fsync rate.

#ifndef RELVIEW_NET_ADMISSION_H_
#define RELVIEW_NET_ADMISSION_H_

#include <atomic>
#include <cstdint>

namespace relview {
namespace net {

/// Bounded non-blocking ticket gate for write admission. All methods are
/// thread-safe; the fast path is one CAS.
class WriteGate {
 public:
  /// `capacity` <= 0 admits nothing (useful in shedding tests).
  explicit WriteGate(int capacity) : capacity_(capacity) {}

  /// Takes a ticket when depth < capacity. Returns false (shed) otherwise.
  bool TryEnter() {
    int depth = depth_.load(std::memory_order_relaxed);
    while (depth < capacity_) {
      if (depth_.compare_exchange_weak(depth, depth + 1,
                                       std::memory_order_acquire,
                                       std::memory_order_relaxed)) {
        return true;
      }
    }
    sheds_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }

  /// Returns a ticket taken by TryEnter.
  void Exit() { depth_.fetch_sub(1, std::memory_order_release); }

  /// Writes currently holding tickets (queued on or inside ApplyBatch).
  int depth() const { return depth_.load(std::memory_order_relaxed); }
  /// Configured capacity.
  int capacity() const { return capacity_; }
  /// Requests shed since construction.
  uint64_t sheds() const { return sheds_.load(std::memory_order_relaxed); }

  /// Records one completed write's latency into the EWMA that prices
  /// Retry-After (alpha = 1/8).
  void RecordWriteLatency(int64_t nanos) {
    const uint64_t sample = static_cast<uint64_t>(nanos < 0 ? 0 : nanos);
    uint64_t prev = ewma_nanos_.load(std::memory_order_relaxed);
    uint64_t next;
    do {
      next = prev == 0 ? sample : prev - prev / 8 + sample / 8;
    } while (!ewma_nanos_.compare_exchange_weak(prev, next,
                                                std::memory_order_relaxed));
  }

  /// EWMA of write latency in nanoseconds (0 before the first sample).
  uint64_t ewma_write_nanos() const {
    return ewma_nanos_.load(std::memory_order_relaxed);
  }

  /// Seconds a shed client should wait before retrying: the time for the
  /// current queue to drain at the observed per-write latency, rounded
  /// up, clamped into [1, 60].
  int RetryAfterSeconds() const;

  /// RAII ticket. `admitted()` is false when the gate shed the request.
  class Ticket {
   public:
    explicit Ticket(WriteGate& gate)
        : gate_(gate), admitted_(gate.TryEnter()) {}
    ~Ticket() {
      if (admitted_) gate_.Exit();
    }
    Ticket(const Ticket&) = delete;
    Ticket& operator=(const Ticket&) = delete;
    /// True when the gate admitted this request.
    bool admitted() const { return admitted_; }

   private:
    WriteGate& gate_;
    const bool admitted_;
  };

 private:
  const int capacity_;
  std::atomic<int> depth_{0};
  std::atomic<uint64_t> sheds_{0};
  std::atomic<uint64_t> ewma_nanos_{0};
};

}  // namespace net
}  // namespace relview

#endif  // RELVIEW_NET_ADMISSION_H_
