#include "net/admission.h"

namespace relview {
namespace net {

int WriteGate::RetryAfterSeconds() const {
  // Drain time for the whole queue at the observed per-write latency.
  // Before any write has completed there is no estimate; answer the
  // floor (1 s) rather than invent one.
  const uint64_t per_write = ewma_write_nanos();
  const uint64_t queued = static_cast<uint64_t>(depth() < 0 ? 0 : depth());
  const uint64_t drain_nanos = per_write * queued;
  const uint64_t secs = (drain_nanos + 999'999'999ULL) / 1'000'000'000ULL;
  if (secs < 1) return 1;
  if (secs > 60) return 60;
  return static_cast<int>(secs);
}

}  // namespace net
}  // namespace relview
