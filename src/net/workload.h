// Multi-tenant workload schema for the network front-end: each tenant is
// an independent ShardedService over the canonical Emp/Dept/Mgr chain
//
//     U = {Emp, Dept, Mgr},  Sigma = {Emp -> Dept, Dept -> Mgr},
//     X = {Emp, Dept},       Y = {Dept, Mgr}
//
// (X and Y are complementary with join key Dept — the attribute the load
// generator skews with a Zipf sampler, so hot departments concentrate
// both view rows and translation work).
//
// The deterministic id layout below is shared by the server-side seeding
// (MakeTenants) and the client-side traffic generator (bench/loadgen):
// both compute the same initial instance from (emps, depts) alone, so the
// generator can predict which updates are translatable without ever
// reading server state. Employee ids live in [1, emps]; department and
// manager ids are offset into disjoint ranges so the three roles never
// alias in the constant space.

#ifndef RELVIEW_NET_WORKLOAD_H_
#define RELVIEW_NET_WORKLOAD_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "shard/sharded_service.h"
#include "util/status.h"

namespace relview {
namespace net {

/// First department id (employee ids start at 1 and stay below this).
inline constexpr uint32_t kDeptBase = 1'000'000;
/// First manager id.
inline constexpr uint32_t kMgrBase = 2'000'000;

/// The seeded department of employee `emp` under a `depts`-department
/// tenant: employees are dealt round-robin.
inline constexpr uint32_t DeptOfEmp(uint32_t emp, uint32_t depts) {
  return kDeptBase + (depts == 0 ? 0 : emp % depts);
}

/// The (unique, FD-respecting) manager of department `dept`.
inline constexpr uint32_t MgrOfDept(uint32_t dept) {
  return kMgrBase + (dept - kDeptBase);
}

/// Sizing for MakeTenants.
struct TenantSpec {
  /// Number of independent tenants ("t0", "t1", ...).
  int tenants = 4;
  /// Employees seeded per tenant (ids 1..emps).
  uint32_t emps = 64;
  /// Departments per tenant (join-key cardinality).
  uint32_t depts = 8;
  /// When non-empty, each tenant persists through per-shard DurableStores
  /// under `<store_root>/<tenant>/shard-<i>`; empty runs in-memory.
  std::string store_root;
  /// Checkpoint cadence forwarded to StoreOptions (0 = store default).
  uint64_t checkpoint_every = 0;
  /// Write-path shards per tenant (>= 1). 1 preserves the unsharded
  /// semantics exactly (one UpdateService behind a degenerate router).
  int shards = 1;
  /// Enable the per-shard cross-batch group-commit journal path (needs a
  /// store_root; ignored in-memory).
  bool group_commit = false;
  /// Leader gathering window forwarded to ServiceOptions::group_window_us.
  uint32_t group_window_us = 0;
  /// Group-commit stall watchdog forwarded to
  /// ServiceOptions::commit_stall_ms (0 disables).
  uint32_t commit_stall_ms = 0;
};

/// The set of tenant services the server routes between. Movable only.
struct TenantSet {
  std::vector<std::string> names;
  std::vector<std::unique_ptr<ShardedService>> services;

  /// The service for `name`, or nullptr when unknown.
  ShardedService* Find(const std::string& name) const;
  int size() const { return static_cast<int>(services.size()); }
};

/// Builds `spec.tenants` independent services, each seeded with the
/// deterministic instance {(e, DeptOfEmp(e), MgrOfDept(DeptOfEmp(e)))
/// : e in [1, emps]}. With a store_root, tenants recover whatever a
/// previous incarnation journaled under the same root.
Result<TenantSet> MakeTenants(const TenantSpec& spec);

}  // namespace net
}  // namespace relview

#endif  // RELVIEW_NET_WORKLOAD_H_
