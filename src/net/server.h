/// \file
/// HttpServer: the network front-end over a TenantSet of ShardedServices
/// (each tenant is N shard-local write paths behind a deterministic
/// t[X∩Y]-hash router; see shard/sharded_service.h).
///
/// Threading model — one acceptor, thread-per-connection on a fixed pool:
/// the acceptor thread accept()s, enforces the connection cap (excess
/// connections get an immediate 503 and close, they never occupy a
/// worker), and hands each admitted socket to a ThreadPool worker that
/// serves the whole keep-alive conversation. Workers block in recv with a
/// receive timeout, so an idle peer releases its worker after
/// `idle_timeout_ms` and a torn request is answered with 408.
///
/// Admission and backpressure (see admission.h): POST /v1/batch takes a
/// WriteGate ticket for the whole check→journal→fsync→publish path.
/// When the gate is full the request is shed with 429 and a Retry-After
/// priced from the observed write latency — clients see backpressure
/// before the writer mutex queue grows, and the acceptor never stops
/// reading, so reads and health checks stay live past the write
/// saturation knee.
///
/// Graceful drain: BeginDrain() is async-signal-safe (an atomic store
/// plus shutdown(2) of the listen socket) so a SIGTERM handler may call
/// it directly. Draining connections finish their in-flight request;
/// subsequent requests get 503 + Connection: close. Wait() blocks until
/// the drain completes (bounded by `drain_timeout_ms`, after which
/// lingering connections are shut down hard).
///
/// Wire protocol (JSON; see docs/OPERATIONS.md "Running the server"):
///   POST /v1/batch        {"tenant":"t0","updates":[{"op":"insert",
///                          "row":[1,1000000]}, {"op":"replace",
///                          "from":[1,1000000],"to":[1,1000001]}, ...]}
///     200 committed, 409 rejected (failed_index + verdict), 429 shed,
///     503 deadline / draining / durability failure
///   GET /v1/snapshot?tenant=t0[&include=database]   versioned view rows
///   GET /healthz          200 "ok" (503 while draining)
///   GET /metrics          Prometheus text; ?format=json for the JSON
///                         document of every registered section
///   GET /v1/trace         Chrome trace_event JSON of the span ring
///                         (?clear=1 empties the ring after export)
///
/// Request tracing: every request resolves a trace id — adopted from an
/// `x-relview-trace` request header (16 hex digits) or freshly minted —
/// which is installed as the thread's TraceContext for the handler's
/// duration, echoed back in an `x-relview-trace` response header on every
/// path (including 429/503 refusals), stamped as an exemplar on the route
/// latency histograms, and carried into one wide event per request
/// (obs/wide_event.h) when the global sink is configured.

#ifndef RELVIEW_NET_SERVER_H_
#define RELVIEW_NET_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "net/admission.h"
#include "net/http.h"
#include "net/metrics.h"
#include "net/workload.h"
#include "obs/telemetry.h"
#include "obs/wide_event.h"
#include "util/annotations.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace relview {
namespace net {

/// Tuning for HttpServer::Start.
struct ServerOptions {
  /// Listen address ("127.0.0.1"; "0.0.0.0" to expose).
  std::string host = "127.0.0.1";
  /// Listen port; 0 picks an ephemeral port (read it back via port()).
  int port = 0;
  /// Connection-serving worker threads; <= 0 sizes the pool to
  /// max_connections so an admitted connection never queues.
  int worker_threads = 0;
  /// Open-connection cap; excess accepts are answered 503 and closed.
  int max_connections = 64;
  /// WriteGate capacity: batches allowed on the check→fsync→publish path
  /// at once (the rest shed with 429).
  int max_write_queue = 8;
  /// Default per-request deadline for POST /v1/batch, measured from
  /// request-complete to apply-start; expired requests get 503 without
  /// touching the service. A request may override it downward with an
  /// `x-relview-deadline-ms` header. < 0 disables.
  int request_deadline_ms = 5000;
  /// recv timeout: an idle keep-alive connection is closed after this
  /// long; a connection mid-request gets 408.
  int idle_timeout_ms = 5000;
  /// HTTP parse limits (see HttpLimits).
  size_t max_header_bytes = 8 * 1024;
  size_t max_body_bytes = 1 << 20;
  /// How long Wait()/Stop() lets in-flight connections finish after
  /// BeginDrain before shutting their sockets down hard.
  int drain_timeout_ms = 5000;
};

/// The front-end server. Construction binds + listens + starts threads;
/// destruction (or Stop()) drains and joins. Thread-safe.
class HttpServer {
 public:
  /// Binds `options.host:options.port`, registers the "net" telemetry
  /// section with `registry` (optional, may be null) and starts serving
  /// `tenants` (borrowed; must outlive the server).
  static Result<std::unique_ptr<HttpServer>> Start(
      TenantSet* tenants, TelemetryRegistry* registry,
      ServerOptions options = {});

  ~HttpServer();
  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// The bound port (resolves port 0).
  int port() const { return port_; }

  /// Starts a graceful drain: stop accepting, finish in-flight requests,
  /// answer new requests on live connections with 503 + close.
  /// Async-signal-safe; callable from a SIGTERM handler.
  void BeginDrain();

  /// True once BeginDrain was called.
  bool draining() const {
    return draining_.load(std::memory_order_acquire);
  }

  /// Blocks until the server has fully drained after BeginDrain:
  /// acceptor joined, connections closed (hard-closed past
  /// drain_timeout_ms), workers joined, telemetry unregistered.
  void Wait();

  /// BeginDrain + Wait. Idempotent.
  void Stop();

  /// Front-end counters (live; safe from any thread).
  const NetMetrics& metrics() const { return metrics_; }
  /// The write-admission gate (live depth / shed counters).
  const WriteGate& gate() const { return *gate_; }

 private:
  HttpServer(TenantSet* tenants, TelemetryRegistry* registry,
             const ServerOptions& options);

  Status Listen();
  void AcceptLoop();
  void ServeConnection(int fd);
  /// Dispatches one parsed request; returns the full response bytes and
  /// sets *keep_open.
  std::string Handle(const HttpRequest& req, int64_t received_nanos,
                     bool* keep_open);
  /// Wide-event shell around HandleBatchInner: opens the request's root
  /// span ("net.batch") and emits one WideEvent when the sink is live
  /// (forced for 5xx outcomes).
  std::string HandleBatch(const HttpRequest& req, int64_t received_nanos,
                          bool* keep_open);
  std::string HandleBatchInner(const HttpRequest& req, int64_t received_nanos,
                               bool* keep_open, WideEvent* ev);
  std::string HandleSnapshot(const HttpRequest& req);
  std::string HandleMetrics(const HttpRequest& req);
  std::string HandleTrace(const HttpRequest& req);

  /// Registers/unregisters a connection fd for the drain bookkeeping.
  bool TrackConnection(int fd) RELVIEW_EXCLUDES(conn_mu_);
  void UntrackConnection(int fd) RELVIEW_EXCLUDES(conn_mu_);

  TenantSet* const tenants_;
  TelemetryRegistry* const registry_;
  const ServerOptions options_;

  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> draining_{false};
  std::atomic<bool> stopped_{false};

  mutable Mutex conn_mu_;
  CondVar conn_cv_;
  std::set<int> open_fds_ RELVIEW_GUARDED_BY(conn_mu_);

  std::unique_ptr<WriteGate> gate_;
  NetMetrics metrics_;
  std::unique_ptr<ThreadPool> pool_;
  std::thread acceptor_;
};

}  // namespace net
}  // namespace relview

#endif  // RELVIEW_NET_SERVER_H_
