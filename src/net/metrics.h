// NetMetrics: counters and latency distributions for the HTTP front-end,
// exported through TelemetryRegistry next to the service metrics. Same
// discipline as ServiceMetrics: lock-free atomics on the hot path, a
// relaxed-consistent scrape (single-valued families only, so there are
// no multi-counter tear windows to guard here).

#ifndef RELVIEW_NET_METRICS_H_
#define RELVIEW_NET_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

#include "obs/histogram.h"
#include "obs/telemetry.h"

namespace relview {
namespace net {

/// Route classes the server distinguishes in its metrics.
enum class Route {
  kBatch = 0,    ///< POST /v1/batch
  kSnapshot,     ///< GET /v1/snapshot
  kHealth,       ///< GET /healthz
  kMetrics,      ///< GET /metrics
  kTrace,        ///< GET /v1/trace (Chrome-trace export)
  kOther,        ///< anything else (404/405 paths)
  kNumRoutes,    ///< sentinel; keep last
};

/// "batch", "snapshot", ...
const char* RouteName(Route route);

/// Why a request was refused without being served.
enum class RefusalKind {
  kShed429 = 0,     ///< write gate full: 429 + Retry-After
  kDeadline,        ///< per-request deadline exceeded before apply: 503
  kDraining,        ///< server draining on SIGTERM: 503
  kOverCapacity,    ///< connection cap hit at accept time: 503
  kDurability,      ///< journal/fsync failure surfaced as 503
  kParse,           ///< 4xx parse/validation failures
  kNumRefusalKinds, ///< sentinel; keep last
};

/// "shed", "deadline", ...
const char* RefusalKindName(RefusalKind kind);

/// The front-end's counter/latency module. All methods are thread-safe.
class NetMetrics {
 public:
  static constexpr int kRoutes = static_cast<int>(Route::kNumRoutes);
  static constexpr int kRefusals =
      static_cast<int>(RefusalKind::kNumRefusalKinds);

  /// Counts one request routed to `route`.
  void RecordRequest(Route route) {
    requests_[static_cast<int>(route)].fetch_add(1,
                                                 std::memory_order_relaxed);
  }
  /// Counts one response with `status` (bucketed by class internally).
  void RecordResponse(int status);
  /// Counts one refusal of `kind`.
  void RecordRefusal(RefusalKind kind) {
    refusals_[static_cast<int>(kind)].fetch_add(1,
                                                std::memory_order_relaxed);
  }
  /// Records end-to-end handling latency (parse-complete to response
  /// bytes written) for `route`. A nonzero `trace_id` becomes the
  /// containing bucket's exemplar, so the exported p99 can name a
  /// concrete recorded trace.
  void RecordLatency(Route route, int64_t nanos, uint64_t trace_id = 0);
  /// Tracks the connection gauge.
  void ConnectionOpened() {
    connections_.fetch_add(1, std::memory_order_relaxed);
    connections_total_.fetch_add(1, std::memory_order_relaxed);
  }
  void ConnectionClosed() {
    connections_.fetch_sub(1, std::memory_order_relaxed);
  }
  /// Byte accounting.
  void AddBytesRead(uint64_t n) {
    bytes_read_.fetch_add(n, std::memory_order_relaxed);
  }
  void AddBytesWritten(uint64_t n) {
    bytes_written_.fetch_add(n, std::memory_order_relaxed);
  }

  /// Requests routed to `route` so far.
  uint64_t requests(Route route) const {
    return requests_[static_cast<int>(route)].load(std::memory_order_relaxed);
  }
  /// Responses with status `s` (counted per distinct emitted code).
  uint64_t responses(int status) const;
  /// Refusals of `kind` so far.
  uint64_t refusals(RefusalKind kind) const {
    return refusals_[static_cast<int>(kind)].load(std::memory_order_relaxed);
  }
  /// Currently open connections.
  int64_t connections() const {
    return static_cast<int64_t>(
        connections_.load(std::memory_order_relaxed));
  }
  /// Connections accepted since start.
  uint64_t connections_total() const {
    return connections_total_.load(std::memory_order_relaxed);
  }
  /// Handling-latency distribution for `route`.
  const LatencyHistogram& latency(Route route) const {
    return latency_[static_cast<int>(route)];
  }

  /// Metric families for the telemetry registry ("net" section).
  std::vector<MetricFamily> Collect() const;
  /// Single-line JSON summary for the registry's JSON document.
  std::string ToJson() const;

 private:
  // Distinct status codes the server emits; anything else lands in the
  // final slot as "other".
  static constexpr std::array<int, 12> kStatusCodes = {
      200, 400, 404, 405, 408, 409, 411, 413, 429, 431, 501, 503};

  static int StatusSlot(int status);

  std::array<std::atomic<uint64_t>, kRoutes> requests_{};
  std::array<std::atomic<uint64_t>, kStatusCodes.size() + 1> responses_{};
  std::array<std::atomic<uint64_t>, kRefusals> refusals_{};
  std::atomic<int64_t> connections_{0};
  std::atomic<uint64_t> connections_total_{0};
  std::atomic<uint64_t> bytes_read_{0};
  std::atomic<uint64_t> bytes_written_{0};
  std::array<LatencyHistogram, kRoutes> latency_{};
};

}  // namespace net
}  // namespace relview

#endif  // RELVIEW_NET_METRICS_H_
