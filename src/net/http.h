// Minimal HTTP/1.1 machinery for the network front-end: an incremental
// request parser (fed arbitrary byte chunks, so torn reads and pipelining
// fall out of the design instead of being patched on), response
// formatting, and an incremental response parser for clients (loadgen,
// tests). No external dependencies; only the subset the relview server
// speaks is implemented:
//
//   * request line + headers + optional Content-Length body
//   * keep-alive (HTTP/1.1 default) and Connection: close
//   * pipelining: leftover bytes after one request seed the next parse
//   * hard limits on header and body size, reported as 431/413 so the
//     handler can answer before closing
//
// Unsupported on purpose (answered with a clean error, never a hang):
// chunked transfer encoding (501), requests without Content-Length that
// claim a body, percent-escaped query strings (parsed verbatim).

#ifndef RELVIEW_NET_HTTP_H_
#define RELVIEW_NET_HTTP_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace relview {
namespace net {

/// Size caps enforced while parsing; exceeding one yields a typed parse
/// error (431 for headers, 413 for bodies) instead of unbounded buffering.
struct HttpLimits {
  /// Max bytes of request line + headers (through the blank line).
  size_t max_header_bytes = 8 * 1024;
  /// Max Content-Length accepted for a request body.
  size_t max_body_bytes = 1 << 20;
};

/// One parsed HTTP request.
struct HttpRequest {
  std::string method;   ///< "GET", "POST", ... (verbatim).
  std::string target;   ///< Raw request target ("/v1/batch?tenant=t0").
  std::string path;     ///< Target up to '?' ("/v1/batch").
  std::string query;    ///< Target after '?' ("" when absent).
  std::string version;  ///< "HTTP/1.1" or "HTTP/1.0".
  /// Header (name, value) pairs in arrival order; names as sent.
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;

  /// Case-insensitive header lookup; empty string when absent.
  const std::string& Header(const std::string& name) const;
  /// Value of `key` in the query string ("a=1&b=2" syntax, no unescaping);
  /// empty when absent.
  std::string QueryParam(const std::string& key) const;
  /// False when "Connection: close" was sent or the version is HTTP/1.0
  /// without "Connection: keep-alive".
  bool keep_alive() const;
};

/// Incremental HTTP/1.1 request parser. Feed() accepts any chunking of
/// the byte stream — a whole pipeline of requests or one byte at a time —
/// and the parser surfaces one complete request per Next() cycle.
///
/// Lifecycle:
///   RequestParser p(limits);
///   p.Feed(data, n);                  // as bytes arrive
///   while (p.complete()) { use p.request(); p.Next(); }
///   if (p.error()) { answer with p.error_status(); close; }
class RequestParser {
 public:
  explicit RequestParser(HttpLimits limits = {}) : limits_(limits) {}

  /// Appends bytes to the parse buffer and advances the state machine.
  void Feed(const char* data, size_t n);

  /// True when a full request is parsed and request() is valid.
  bool complete() const { return state_ == State::kComplete; }
  /// True after a malformed or over-limit input; the connection should be
  /// answered with error_status() and closed.
  bool error() const { return state_ == State::kError; }
  /// True while mid-request (bytes consumed, request not complete): a
  /// read timeout here is a torn request, not an idle connection.
  bool mid_request() const {
    return state_ != State::kError &&
           (!buffer_.empty() || state_ == State::kBody);
  }
  /// The parsed request. Valid only while complete().
  const HttpRequest& request() const { return request_; }
  /// Suggested response status for error(): 400, 411, 413, 431 or 501.
  int error_status() const { return error_status_; }
  /// Human-readable parse-error detail.
  const std::string& error_detail() const { return error_detail_; }

  /// Discards the completed request and starts parsing the next one from
  /// any leftover (pipelined) bytes already fed.
  void Next();

 private:
  enum class State { kHeaders, kBody, kComplete, kError };

  void ParseHeaderBlock(size_t block_end);
  void Fail(int status, std::string detail);
  void TryAdvance();

  HttpLimits limits_;
  State state_ = State::kHeaders;
  std::string buffer_;
  size_t body_expected_ = 0;
  HttpRequest request_;
  int error_status_ = 400;
  std::string error_detail_;
};

/// Incremental HTTP/1.1 response parser (client side: loadgen and the
/// loopback tests). Responses must carry Content-Length — the relview
/// server always does.
class ResponseParser {
 public:
  /// Appends bytes and advances the state machine.
  void Feed(const char* data, size_t n);

  /// True when a full response (headers + body) is parsed.
  bool complete() const { return state_ == State::kComplete; }
  /// True on a malformed response.
  bool error() const { return state_ == State::kError; }
  /// Parsed status code (e.g. 200, 429). Valid while complete().
  int status() const { return status_; }
  /// Response body. Valid while complete().
  const std::string& body() const { return body_; }
  /// Case-insensitive response-header lookup; empty when absent.
  const std::string& Header(const std::string& name) const;

  /// Discards the completed response and starts on leftover bytes.
  void Next();

 private:
  enum class State { kHeaders, kBody, kComplete, kError };

  State state_ = State::kHeaders;
  std::string buffer_;
  size_t body_expected_ = 0;
  int status_ = 0;
  std::string body_;
  std::vector<std::pair<std::string, std::string>> headers_;
};

/// Canonical reason phrase for the status codes the server emits
/// ("OK", "Too Many Requests", ...); "Unknown" otherwise.
const char* StatusText(int status);

/// Formats a full response: status line, Content-Type/Content-Length,
/// "Connection: close" when `keep_alive` is false, `extra_headers`
/// verbatim (each "Name: value", no CRLF), then the body.
std::string BuildResponse(int status, const std::string& content_type,
                          const std::string& body, bool keep_alive,
                          const std::vector<std::string>& extra_headers = {});

/// Formats a request (client side). `body` empty means no body and no
/// Content-Length for GET-style methods. `extra_headers` are emitted
/// verbatim (each "Name: value", no CRLF) after the Host header.
std::string BuildRequest(const std::string& method, const std::string& target,
                         const std::string& host, const std::string& body,
                         const std::vector<std::string>& extra_headers = {});

}  // namespace net
}  // namespace relview

#endif  // RELVIEW_NET_HTTP_H_
