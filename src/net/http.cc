#include "net/http.h"

#include <algorithm>
#include <cctype>

namespace relview {
namespace net {

namespace {

const std::string kEmpty;

bool IEquals(const std::string& a, const std::string& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string Trim(const std::string& s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t')) ++b;
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t')) --e;
  return s.substr(b, e - b);
}

const std::string& FindHeader(
    const std::vector<std::pair<std::string, std::string>>& headers,
    const std::string& name) {
  for (const auto& [k, v] : headers) {
    if (IEquals(k, name)) return v;
  }
  return kEmpty;
}

/// Parses a non-negative decimal integer; false on junk or overflow past
/// `max`.
bool ParseSize(const std::string& s, size_t max, size_t* out) {
  if (s.empty()) return false;
  size_t v = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return false;
    if (v > max / 10) return false;
    v = v * 10 + static_cast<size_t>(c - '0');
    if (v > max) return false;
  }
  *out = v;
  return true;
}

/// Splits a header block (without the trailing blank line) into lines and
/// appends (name, value) pairs. Returns false on a malformed line.
bool ParseHeaderLines(const std::string& block, size_t first_line_end,
                      std::vector<std::pair<std::string, std::string>>* out) {
  size_t pos = first_line_end;
  while (pos < block.size()) {
    size_t eol = block.find("\r\n", pos);
    if (eol == std::string::npos) eol = block.size();
    const std::string line = block.substr(pos, eol - pos);
    pos = eol + 2;
    if (line.empty()) continue;
    const size_t colon = line.find(':');
    if (colon == std::string::npos || colon == 0) return false;
    out->emplace_back(Trim(line.substr(0, colon)),
                      Trim(line.substr(colon + 1)));
  }
  return true;
}

}  // namespace

const std::string& HttpRequest::Header(const std::string& name) const {
  return FindHeader(headers, name);
}

std::string HttpRequest::QueryParam(const std::string& key) const {
  size_t pos = 0;
  while (pos < query.size()) {
    size_t amp = query.find('&', pos);
    if (amp == std::string::npos) amp = query.size();
    const size_t eq = query.find('=', pos);
    if (eq != std::string::npos && eq < amp &&
        query.compare(pos, eq - pos, key) == 0) {
      return query.substr(eq + 1, amp - eq - 1);
    }
    pos = amp + 1;
  }
  return "";
}

bool HttpRequest::keep_alive() const {
  const std::string& conn = Header("Connection");
  if (IEquals(conn, "close")) return false;
  if (version == "HTTP/1.0") return IEquals(conn, "keep-alive");
  return true;
}

void RequestParser::Fail(int status, std::string detail) {
  state_ = State::kError;
  error_status_ = status;
  error_detail_ = std::move(detail);
}

void RequestParser::Feed(const char* data, size_t n) {
  if (state_ == State::kError) return;
  buffer_.append(data, n);
  TryAdvance();
}

void RequestParser::Next() {
  if (state_ != State::kComplete) return;
  request_ = HttpRequest();
  body_expected_ = 0;
  state_ = State::kHeaders;
  TryAdvance();
}

void RequestParser::TryAdvance() {
  if (state_ == State::kHeaders) {
    const size_t block_end = buffer_.find("\r\n\r\n");
    if (block_end == std::string::npos) {
      if (buffer_.size() > limits_.max_header_bytes) {
        Fail(431, "header block exceeds " +
                      std::to_string(limits_.max_header_bytes) + " bytes");
      }
      return;
    }
    if (block_end + 4 > limits_.max_header_bytes) {
      Fail(431, "header block exceeds " +
                    std::to_string(limits_.max_header_bytes) + " bytes");
      return;
    }
    ParseHeaderBlock(block_end);
    if (state_ == State::kError) return;
    buffer_.erase(0, block_end + 4);
  }
  if (state_ == State::kBody) {
    if (buffer_.size() < body_expected_) return;
    request_.body = buffer_.substr(0, body_expected_);
    buffer_.erase(0, body_expected_);
    state_ = State::kComplete;
  }
}

void RequestParser::ParseHeaderBlock(size_t block_end) {
  const std::string block = buffer_.substr(0, block_end + 2);
  const size_t line_end = block.find("\r\n");
  const std::string request_line = block.substr(0, line_end);
  const size_t sp1 = request_line.find(' ');
  const size_t sp2 =
      sp1 == std::string::npos ? std::string::npos
                               : request_line.find(' ', sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos ||
      request_line.find(' ', sp2 + 1) != std::string::npos) {
    Fail(400, "malformed request line: " + request_line);
    return;
  }
  request_.method = request_line.substr(0, sp1);
  request_.target = request_line.substr(sp1 + 1, sp2 - sp1 - 1);
  request_.version = request_line.substr(sp2 + 1);
  if (request_.method.empty() || request_.target.empty() ||
      request_.target[0] != '/') {
    Fail(400, "malformed request target: " + request_.target);
    return;
  }
  if (request_.version != "HTTP/1.1" && request_.version != "HTTP/1.0") {
    Fail(400, "unsupported version: " + request_.version);
    return;
  }
  const size_t qmark = request_.target.find('?');
  request_.path = request_.target.substr(0, qmark);
  request_.query = qmark == std::string::npos
                       ? ""
                       : request_.target.substr(qmark + 1);
  if (!ParseHeaderLines(block, line_end + 2, &request_.headers)) {
    Fail(400, "malformed header line");
    return;
  }
  if (!request_.Header("Transfer-Encoding").empty()) {
    Fail(501, "chunked transfer encoding not supported");
    return;
  }
  const std::string& len = request_.Header("Content-Length");
  if (len.empty()) {
    if (request_.method == "POST" || request_.method == "PUT") {
      Fail(411, "length required for " + request_.method);
      return;
    }
    body_expected_ = 0;
  } else if (!ParseSize(len, limits_.max_body_bytes, &body_expected_)) {
    size_t ignored = 0;
    // Distinguish "too large" (a well-formed number past the cap) from
    // junk so the client learns which mistake to fix.
    if (ParseSize(len, static_cast<size_t>(-1) / 2, &ignored)) {
      Fail(413, "body of " + len + " bytes exceeds limit of " +
                    std::to_string(limits_.max_body_bytes));
    } else {
      Fail(400, "malformed Content-Length: " + len);
    }
    return;
  }
  state_ = State::kBody;
}

void ResponseParser::Feed(const char* data, size_t n) {
  if (state_ == State::kError) return;
  buffer_.append(data, n);
  if (state_ == State::kHeaders) {
    const size_t block_end = buffer_.find("\r\n\r\n");
    if (block_end == std::string::npos) return;
    const std::string block = buffer_.substr(0, block_end + 2);
    const size_t line_end = block.find("\r\n");
    const std::string status_line = block.substr(0, line_end);
    // "HTTP/1.1 200 OK"
    const size_t sp1 = status_line.find(' ');
    if (sp1 == std::string::npos || sp1 + 4 > status_line.size()) {
      state_ = State::kError;
      return;
    }
    status_ = 0;
    for (size_t i = sp1 + 1; i < status_line.size() && status_line[i] != ' ';
         ++i) {
      if (status_line[i] < '0' || status_line[i] > '9') {
        state_ = State::kError;
        return;
      }
      status_ = status_ * 10 + (status_line[i] - '0');
    }
    headers_.clear();
    if (!ParseHeaderLines(block, line_end + 2, &headers_)) {
      state_ = State::kError;
      return;
    }
    const std::string& len = FindHeader(headers_, "Content-Length");
    if (!ParseSize(len, static_cast<size_t>(-1) / 2, &body_expected_)) {
      state_ = State::kError;
      return;
    }
    buffer_.erase(0, block_end + 4);
    state_ = State::kBody;
  }
  if (state_ == State::kBody && buffer_.size() >= body_expected_) {
    body_ = buffer_.substr(0, body_expected_);
    buffer_.erase(0, body_expected_);
    state_ = State::kComplete;
  }
}

const std::string& ResponseParser::Header(const std::string& name) const {
  return FindHeader(headers_, name);
}

void ResponseParser::Next() {
  if (state_ != State::kComplete) return;
  status_ = 0;
  body_.clear();
  headers_.clear();
  body_expected_ = 0;
  state_ = State::kHeaders;
  // Re-feed nothing: the next Feed() call advances on leftover bytes.
  Feed("", 0);
}

const char* StatusText(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 409: return "Conflict";
    case 411: return "Length Required";
    case 413: return "Payload Too Large";
    case 429: return "Too Many Requests";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 501: return "Not Implemented";
    case 503: return "Service Unavailable";
    default: return "Unknown";
  }
}

std::string BuildResponse(int status, const std::string& content_type,
                          const std::string& body, bool keep_alive,
                          const std::vector<std::string>& extra_headers) {
  std::string out = "HTTP/1.1 " + std::to_string(status) + " " +
                    StatusText(status) + "\r\n";
  out += "Content-Type: " + content_type + "\r\n";
  out += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  if (!keep_alive) out += "Connection: close\r\n";
  for (const std::string& h : extra_headers) out += h + "\r\n";
  out += "\r\n";
  out += body;
  return out;
}

std::string BuildRequest(const std::string& method, const std::string& target,
                         const std::string& host, const std::string& body,
                         const std::vector<std::string>& extra_headers) {
  std::string out = method + " " + target + " HTTP/1.1\r\n";
  out += "Host: " + host + "\r\n";
  for (const std::string& h : extra_headers) {
    out += h;
    out += "\r\n";
  }
  if (!body.empty() || method == "POST" || method == "PUT") {
    out += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  }
  out += "\r\n";
  out += body;
  return out;
}

}  // namespace net
}  // namespace relview
