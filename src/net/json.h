// A small recursive-descent JSON parser for the network front-end's
// request bodies, plus escaping helpers for the responses the server
// builds by string concatenation (the house style — see
// ServiceMetrics::ToJson, TelemetryRegistry::RenderJson).
//
// Scope: everything the batch-submit API needs and nothing more —
// objects, arrays, strings (with \uXXXX escapes decoded to UTF-8),
// 64-bit signed integers, booleans, null. Non-integer numbers are
// rejected: every numeric field in the wire protocol is a Value id or a
// count, and silently truncating doubles would corrupt tuples.

#ifndef RELVIEW_NET_JSON_H_
#define RELVIEW_NET_JSON_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "util/status.h"

namespace relview {
namespace net {

/// A parsed JSON value (tree form).
class JsonValue {
 public:
  /// The JSON type tags.
  enum class Type { kNull, kBool, kInt, kString, kArray, kObject };

  /// The value's type.
  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_int() const { return type_ == Type::kInt; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  /// Value accessors; preconditions match the type tag.
  bool bool_value() const { return int_ != 0; }
  int64_t int_value() const { return int_; }
  const std::string& string_value() const { return string_; }
  const std::vector<JsonValue>& array() const { return array_; }

  /// Object member by key, or nullptr when absent / not an object.
  const JsonValue* Get(const std::string& key) const;
  /// Object members in parse order.
  const std::vector<std::pair<std::string, JsonValue>>& members() const {
    return members_;
  }

  /// Constructors used by the parser (and tests).
  static JsonValue Null() { return JsonValue(Type::kNull); }
  static JsonValue Bool(bool b) {
    JsonValue v(Type::kBool);
    v.int_ = b ? 1 : 0;
    return v;
  }
  static JsonValue Int(int64_t i) {
    JsonValue v(Type::kInt);
    v.int_ = i;
    return v;
  }
  static JsonValue String(std::string s) {
    JsonValue v(Type::kString);
    v.string_ = std::move(s);
    return v;
  }

 private:
  friend class JsonParser;
  explicit JsonValue(Type t) : type_(t) {}

  Type type_ = Type::kNull;
  int64_t int_ = 0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

/// Parses `text` as one JSON document (trailing whitespace allowed,
/// trailing garbage rejected). `max_depth` bounds nesting so a hostile
/// body cannot blow the stack. Errors carry a byte offset.
Result<JsonValue> ParseJson(const std::string& text, int max_depth = 32);

/// Escapes `s` for embedding inside a JSON string literal (quotes not
/// included).
std::string JsonEscape(const std::string& s);

}  // namespace net
}  // namespace relview

#endif  // RELVIEW_NET_JSON_H_
