#include "net/workload.h"

#include <utility>

#include "deps/dep_set.h"
#include "relational/relation.h"
#include "relational/tuple.h"
#include "relational/universe.h"
#include "relational/value.h"
#include "view/translator.h"

namespace relview {
namespace net {

UpdateService* TenantSet::Find(const std::string& name) const {
  for (size_t i = 0; i < names.size(); ++i) {
    if (names[i] == name) return services[i].get();
  }
  return nullptr;
}

Result<TenantSet> MakeTenants(const TenantSpec& spec) {
  if (spec.tenants <= 0) {
    return Status::InvalidArgument("TenantSpec.tenants must be positive");
  }
  if (spec.depts == 0 || spec.depts > spec.emps) {
    return Status::InvalidArgument(
        "TenantSpec.depts must be in [1, emps] so every department is "
        "seeded");
  }
  TenantSet out;
  for (int i = 0; i < spec.tenants; ++i) {
    RELVIEW_ASSIGN_OR_RETURN(Universe u, Universe::Parse("Emp Dept Mgr"));
    DependencySet sigma;
    RELVIEW_ASSIGN_OR_RETURN(sigma.fds,
                             FDSet::Parse(u, "Emp -> Dept; Dept -> Mgr"));
    RELVIEW_ASSIGN_OR_RETURN(
        ViewTranslator vt,
        ViewTranslator::Create(u, sigma, u.SetOf("Emp Dept"),
                               u.SetOf("Dept Mgr")));
    Relation db(vt.universe().All());
    for (uint32_t e = 1; e <= spec.emps; ++e) {
      const uint32_t dept = DeptOfEmp(e, spec.depts);
      db.AddRow(Tuple({Value::Const(e), Value::Const(dept),
                       Value::Const(MgrOfDept(dept))}));
    }
    RELVIEW_RETURN_IF_ERROR(vt.Bind(std::move(db)));

    const std::string name = "t" + std::to_string(i);
    ServiceOptions options;
    if (!spec.store_root.empty()) {
      options.store.dir = spec.store_root + "/" + name;
      if (spec.checkpoint_every != 0) {
        options.store.checkpoint_every = spec.checkpoint_every;
      }
    }
    RELVIEW_ASSIGN_OR_RETURN(
        std::unique_ptr<UpdateService> svc,
        UpdateService::Create(std::move(vt), std::move(options)));
    out.names.push_back(name);
    out.services.push_back(std::move(svc));
  }
  return out;
}

}  // namespace net
}  // namespace relview
