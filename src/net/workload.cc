#include "net/workload.h"

#include <utility>

#include "deps/dep_set.h"
#include "relational/relation.h"
#include "relational/tuple.h"
#include "relational/universe.h"
#include "relational/value.h"

namespace relview {
namespace net {

ShardedService* TenantSet::Find(const std::string& name) const {
  for (size_t i = 0; i < names.size(); ++i) {
    if (names[i] == name) return services[i].get();
  }
  return nullptr;
}

Result<TenantSet> MakeTenants(const TenantSpec& spec) {
  if (spec.tenants <= 0) {
    return Status::InvalidArgument("TenantSpec.tenants must be positive");
  }
  if (spec.depts == 0 || spec.depts > spec.emps) {
    return Status::InvalidArgument(
        "TenantSpec.depts must be in [1, emps] so every department is "
        "seeded");
  }
  if (spec.shards < 1) {
    return Status::InvalidArgument("TenantSpec.shards must be >= 1");
  }
  TenantSet out;
  for (int i = 0; i < spec.tenants; ++i) {
    RELVIEW_ASSIGN_OR_RETURN(Universe u, Universe::Parse("Emp Dept Mgr"));
    DependencySet sigma;
    RELVIEW_ASSIGN_OR_RETURN(sigma.fds,
                             FDSet::Parse(u, "Emp -> Dept; Dept -> Mgr"));
    Relation db(u.All());
    for (uint32_t e = 1; e <= spec.emps; ++e) {
      const uint32_t dept = DeptOfEmp(e, spec.depts);
      db.AddRow(Tuple({Value::Const(e), Value::Const(dept),
                       Value::Const(MgrOfDept(dept))}));
    }

    const std::string name = "t" + std::to_string(i);
    ShardedServiceOptions options;
    options.shards = spec.shards;
    if (!spec.store_root.empty()) {
      options.store_root = spec.store_root + "/" + name;
      options.checkpoint_every = spec.checkpoint_every;
      options.group_commit = spec.group_commit;
      options.group_window_us = spec.group_window_us;
      options.commit_stall_ms = spec.commit_stall_ms;
    }
    RELVIEW_ASSIGN_OR_RETURN(
        std::unique_ptr<ShardedService> svc,
        ShardedService::Create(u, sigma, u.SetOf("Emp Dept"),
                               u.SetOf("Dept Mgr"), db,
                               std::move(options)));
    out.names.push_back(name);
    out.services.push_back(std::move(svc));
  }
  return out;
}

}  // namespace net
}  // namespace relview
